/**
 * @file
 * The fleet serving state machine — a des::Kernel client.
 *
 * Discipline mirrors cluster/elastic_run: the engine is a pure
 * function of (immutable inputs, ServingState); every mutation lives
 * in the ServingState, every cost is serial double arithmetic, and
 * nothing reads the wall clock or thread count — which is what makes
 * kill-and-resume byte-identical and lets bench_serving --chaos
 * enforce it with real SIGKILLs.
 *
 * Each decision instant t is a chain of kernel events tie-broken by
 * priority: quiescent marker (0) whose hook takes the cadenced
 * on-disk checkpoint, fault poll (1, ONE due fault per dispatch,
 * self-re-arming), then the step (2). The step processes — in a fixed
 * order — completions, replica spin-ups, due arrivals (admission
 * control), hedge checks, the autoscaler, and dispatch over idle
 * replicas in index order, then arms the next chain at the earliest
 * future decision instant. armStep() advances s.simTimeSec *before*
 * scheduling, so the state a quiescent save captures says "chain at t
 * not yet run": a resumed run re-enters at t and replays the fault
 * poll and step exactly as the uninterrupted run dispatched them.
 */

#include "serving/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "des/kernel.hh"
#include "obs/tracer.hh"
#include "resilience/checkpoint.hh"
#include "runtime/perf_stats.hh"

namespace ascend {
namespace serving {

using resilience::CheckpointStore;
using resilience::FaultEvent;
using resilience::FaultKind;
using resilience::FaultSchedule;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Longest list the state loader accepts (corrupt counts must not OOM). */
constexpr std::uint64_t kMaxListLen = std::uint64_t(1) << 24;

void
putBits(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    s += std::to_string(bits);
    s += ',';
}

void
putU64(std::string &s, std::uint64_t v)
{
    s += std::to_string(v);
    s += ',';
}

std::string
formatSeconds(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9e", v);
    return buf;
}

/** One queued (or in-flight) request instance. */
struct PendingRequest
{
    std::uint64_t id = 0;
    std::uint32_t tier = 0;
    double arrivalSec = 0;
    double deadlineSec = 0; ///< absolute SLO instant
    std::uint32_t attempt = 0; ///< failure re-dispatches so far
    double eligibleSec = 0; ///< earliest dispatch (retry backoff)
    std::uint8_t hedged = 0; ///< participates in first-wins dedup
    std::uint8_t copy = 0;   ///< 1 = hedge duplicate, not the original
    std::uint8_t reoffers = 0; ///< closed-loop re-offers so far
};

enum ReplicaStatus : std::uint32_t {
    kIdle = 0,
    kBusy = 1,
    kSpinningUp = 2,
    kDead = 3,
};

/** One replica slot (failover reuses the slot, autoscale appends). */
struct ReplicaState
{
    std::uint32_t status = kIdle;
    double readyAtSec = 0;    ///< SpinningUp only
    double busyUntilSec = 0;  ///< Busy only
    double dispatchedSec = 0; ///< Busy only
    double stragglerFactor = 1.0;
    double stragglerUntilSec = 0; ///< kInf = for the whole run
    std::uint8_t hedgeIssued = 0; ///< for the current dispatch
    std::uint8_t degraded = 0; ///< current dispatch rides the ladder
    double healthScore = 0;    ///< HealthPolicy fault accumulator
    double breakerUntilSec = 0; ///< breaker open until this instant
    std::vector<PendingRequest> batch; ///< in-flight requests
};

/** Complete engine state at one chain boundary. */
struct ServingState
{
    std::uint64_t sequence = 0; ///< checkpoint ordinal
    double simTimeSec = 0;      ///< chain instant (head not yet run)
    std::uint64_t arrivalCursor = 0;
    std::uint64_t faultCursor = 0;
    std::uint64_t sparesLeft = 0;
    std::uint64_t scaleUpsLeft = 0;
    double nextAutoscaleSec = 0;
    double lastCheckpointSec = -1;

    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t goodput = 0;
    std::uint64_t retries = 0;
    std::uint64_t hedges = 0;
    std::uint64_t replicaFailures = 0;
    std::uint64_t failovers = 0;
    std::uint64_t autoscaleUps = 0;
    std::uint64_t checkpointsSaved = 0;
    std::uint64_t reoffered = 0;
    std::uint64_t breakerTrips = 0;
    std::uint64_t brownoutEntries = 0;
    std::uint64_t brownoutCompleted = 0;
    std::uint64_t brownoutGoodput = 0;
    std::uint64_t nextReofferId = 0; ///< fresh ids for re-offers
    std::uint8_t brownoutActive = 0;
    double brownoutSinceSec = 0; ///< entry instant while active
    double brownoutSec = 0;      ///< accumulated over closed windows

    std::vector<PendingRequest> queue;
    std::vector<PendingRequest> reoffers; ///< due at eligibleSec
    std::vector<ReplicaState> replicas;
    std::vector<std::uint64_t> hedgedIds;  ///< sorted: ids with copies
    std::vector<std::uint64_t> hedgedDone; ///< sorted: winner answered
    std::vector<double> latencies; ///< every completed request
    std::vector<double> completionsSec;    ///< aligned with latencies
    std::vector<std::uint8_t> completedOnTime; ///< aligned, 0/1
    std::string eventLog;
};

void
writeU64(std::string &buf, std::uint64_t v)
{
    char raw[sizeof(v)];
    std::memcpy(raw, &v, sizeof(v));
    buf.append(raw, sizeof(v));
}

void
writeDouble(std::string &buf, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(v));
    writeU64(buf, bits);
}

struct Reader
{
    const std::string &data;
    std::size_t pos = 0;

    bool
    readU64(std::uint64_t &v)
    {
        if (data.size() - pos < sizeof(v))
            return false;
        std::memcpy(&v, data.data() + pos, sizeof(v));
        pos += sizeof(v);
        return true;
    }

    bool
    readDouble(double &v)
    {
        std::uint64_t bits = 0;
        if (!readU64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    readCount(std::uint64_t &n)
    {
        return readU64(n) && n <= kMaxListLen;
    }
};

void
writeRequest(std::string &buf, const PendingRequest &r)
{
    writeU64(buf, r.id);
    writeU64(buf, r.tier);
    writeDouble(buf, r.arrivalSec);
    writeDouble(buf, r.deadlineSec);
    writeU64(buf, r.attempt);
    writeDouble(buf, r.eligibleSec);
    writeU64(buf, (std::uint64_t(r.reoffers) << 2) |
                      (std::uint64_t(r.hedged) << 1) | r.copy);
}

bool
readRequest(Reader &rd, PendingRequest &r)
{
    std::uint64_t tier = 0, attempt = 0, flags = 0;
    if (!rd.readU64(r.id) || !rd.readU64(tier) ||
        !rd.readDouble(r.arrivalSec) || !rd.readDouble(r.deadlineSec) ||
        !rd.readU64(attempt) || !rd.readDouble(r.eligibleSec) ||
        !rd.readU64(flags))
        return false;
    r.tier = std::uint32_t(tier);
    r.attempt = std::uint32_t(attempt);
    r.hedged = std::uint8_t((flags >> 1) & 1);
    r.copy = std::uint8_t(flags & 1);
    r.reoffers = std::uint8_t((flags >> 2) & 0xff);
    return true;
}

/** Field-wise serialization of the whole state (blob payload). */
std::string
serializeState(const ServingState &s)
{
    std::string buf;
    buf.reserve(256 + s.queue.size() * 56 + s.replicas.size() * 72 +
                s.latencies.size() * 8 + s.eventLog.size());
    writeU64(buf, s.sequence);
    writeDouble(buf, s.simTimeSec);
    writeU64(buf, s.arrivalCursor);
    writeU64(buf, s.faultCursor);
    writeU64(buf, s.sparesLeft);
    writeU64(buf, s.scaleUpsLeft);
    writeDouble(buf, s.nextAutoscaleSec);
    writeDouble(buf, s.lastCheckpointSec);
    writeU64(buf, s.offered);
    writeU64(buf, s.admitted);
    writeU64(buf, s.shed);
    writeU64(buf, s.completed);
    writeU64(buf, s.goodput);
    writeU64(buf, s.retries);
    writeU64(buf, s.hedges);
    writeU64(buf, s.replicaFailures);
    writeU64(buf, s.failovers);
    writeU64(buf, s.autoscaleUps);
    writeU64(buf, s.checkpointsSaved);
    writeU64(buf, s.reoffered);
    writeU64(buf, s.breakerTrips);
    writeU64(buf, s.brownoutEntries);
    writeU64(buf, s.brownoutCompleted);
    writeU64(buf, s.brownoutGoodput);
    writeU64(buf, s.nextReofferId);
    writeU64(buf, s.brownoutActive);
    writeDouble(buf, s.brownoutSinceSec);
    writeDouble(buf, s.brownoutSec);
    writeU64(buf, s.queue.size());
    for (const PendingRequest &r : s.queue)
        writeRequest(buf, r);
    writeU64(buf, s.reoffers.size());
    for (const PendingRequest &r : s.reoffers)
        writeRequest(buf, r);
    writeU64(buf, s.replicas.size());
    for (const ReplicaState &r : s.replicas) {
        writeU64(buf, r.status);
        writeDouble(buf, r.readyAtSec);
        writeDouble(buf, r.busyUntilSec);
        writeDouble(buf, r.dispatchedSec);
        writeDouble(buf, r.stragglerFactor);
        writeDouble(buf, r.stragglerUntilSec);
        writeU64(buf, (std::uint64_t(r.degraded) << 1) |
                          r.hedgeIssued);
        writeDouble(buf, r.healthScore);
        writeDouble(buf, r.breakerUntilSec);
        writeU64(buf, r.batch.size());
        for (const PendingRequest &b : r.batch)
            writeRequest(buf, b);
    }
    writeU64(buf, s.hedgedIds.size());
    for (std::uint64_t id : s.hedgedIds)
        writeU64(buf, id);
    writeU64(buf, s.hedgedDone.size());
    for (std::uint64_t id : s.hedgedDone)
        writeU64(buf, id);
    writeU64(buf, s.latencies.size());
    for (double v : s.latencies)
        writeDouble(buf, v);
    writeU64(buf, s.completionsSec.size());
    for (double v : s.completionsSec)
        writeDouble(buf, v);
    writeU64(buf, s.completedOnTime.size());
    for (std::uint8_t v : s.completedOnTime)
        buf += char(v);
    writeU64(buf, s.eventLog.size());
    buf += s.eventLog;
    return buf;
}

bool
deserializeState(const std::string &payload, ServingState &out)
{
    Reader rd{payload};
    ServingState s;
    std::uint64_t n = 0;
    if (!rd.readU64(s.sequence) || !rd.readDouble(s.simTimeSec) ||
        !rd.readU64(s.arrivalCursor) || !rd.readU64(s.faultCursor) ||
        !rd.readU64(s.sparesLeft) || !rd.readU64(s.scaleUpsLeft) ||
        !rd.readDouble(s.nextAutoscaleSec) ||
        !rd.readDouble(s.lastCheckpointSec) || !rd.readU64(s.offered) ||
        !rd.readU64(s.admitted) || !rd.readU64(s.shed) ||
        !rd.readU64(s.completed) || !rd.readU64(s.goodput) ||
        !rd.readU64(s.retries) || !rd.readU64(s.hedges) ||
        !rd.readU64(s.replicaFailures) || !rd.readU64(s.failovers) ||
        !rd.readU64(s.autoscaleUps) || !rd.readU64(s.checkpointsSaved))
        return false;
    std::uint64_t brownout_active = 0;
    if (!rd.readU64(s.reoffered) || !rd.readU64(s.breakerTrips) ||
        !rd.readU64(s.brownoutEntries) ||
        !rd.readU64(s.brownoutCompleted) ||
        !rd.readU64(s.brownoutGoodput) ||
        !rd.readU64(s.nextReofferId) || !rd.readU64(brownout_active) ||
        !rd.readDouble(s.brownoutSinceSec) ||
        !rd.readDouble(s.brownoutSec))
        return false;
    s.brownoutActive = std::uint8_t(brownout_active);
    if (!rd.readCount(n))
        return false;
    s.queue.resize(std::size_t(n));
    for (PendingRequest &r : s.queue)
        if (!readRequest(rd, r))
            return false;
    if (!rd.readCount(n))
        return false;
    s.reoffers.resize(std::size_t(n));
    for (PendingRequest &r : s.reoffers)
        if (!readRequest(rd, r))
            return false;
    if (!rd.readCount(n))
        return false;
    s.replicas.resize(std::size_t(n));
    for (ReplicaState &r : s.replicas) {
        std::uint64_t status = 0, flags = 0, batch = 0;
        if (!rd.readU64(status) || !rd.readDouble(r.readyAtSec) ||
            !rd.readDouble(r.busyUntilSec) ||
            !rd.readDouble(r.dispatchedSec) ||
            !rd.readDouble(r.stragglerFactor) ||
            !rd.readDouble(r.stragglerUntilSec) ||
            !rd.readU64(flags) || !rd.readDouble(r.healthScore) ||
            !rd.readDouble(r.breakerUntilSec) || !rd.readCount(batch))
            return false;
        r.status = std::uint32_t(status);
        r.hedgeIssued = std::uint8_t(flags & 1);
        r.degraded = std::uint8_t((flags >> 1) & 1);
        r.batch.resize(std::size_t(batch));
        for (PendingRequest &b : r.batch)
            if (!readRequest(rd, b))
                return false;
    }
    if (!rd.readCount(n))
        return false;
    s.hedgedIds.resize(std::size_t(n));
    for (std::uint64_t &id : s.hedgedIds)
        if (!rd.readU64(id))
            return false;
    if (!rd.readCount(n))
        return false;
    s.hedgedDone.resize(std::size_t(n));
    for (std::uint64_t &id : s.hedgedDone)
        if (!rd.readU64(id))
            return false;
    if (!rd.readCount(n))
        return false;
    s.latencies.resize(std::size_t(n));
    for (double &v : s.latencies)
        if (!rd.readDouble(v))
            return false;
    if (!rd.readCount(n))
        return false;
    s.completionsSec.resize(std::size_t(n));
    for (double &v : s.completionsSec)
        if (!rd.readDouble(v))
            return false;
    if (!rd.readCount(n) || n > payload.size() - rd.pos)
        return false;
    s.completedOnTime.resize(std::size_t(n));
    for (std::uint8_t &v : s.completedOnTime)
        v = std::uint8_t(payload[rd.pos++]);
    if (!rd.readU64(n) || n > payload.size() - rd.pos)
        return false;
    s.eventLog.assign(payload.data() + rd.pos, std::size_t(n));
    rd.pos += std::size_t(n);
    if (rd.pos != payload.size())
        return false;
    out = std::move(s);
    return true;
}

bool
sortedContains(const std::vector<std::uint64_t> &v, std::uint64_t id)
{
    return std::binary_search(v.begin(), v.end(), id);
}

void
sortedInsert(std::vector<std::uint64_t> &v, std::uint64_t id)
{
    const auto it = std::lower_bound(v.begin(), v.end(), id);
    if (it == v.end() || *it != id)
        v.insert(it, id);
}

/** Dispatch order: tightest deadline first, then stable identity. */
bool
requestBefore(const PendingRequest &a, const PendingRequest &b)
{
    if (a.deadlineSec != b.deadlineSec)
        return a.deadlineSec < b.deadlineSec;
    if (a.id != b.id)
        return a.id < b.id;
    if (a.attempt != b.attempt)
        return a.attempt < b.attempt;
    return a.copy < b.copy;
}

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double rank = q * double(sorted.size());
    std::size_t idx = std::size_t(std::ceil(rank));
    idx = idx > 0 ? idx - 1 : 0;
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** The engine: immutable inputs + kernel + checkpointable state. */
struct FleetEngine
{
    FleetEngine(const std::vector<Request> &arrivals_,
                const std::vector<QosTier> &tiers_,
                const BatchLatencyModel &model_,
                const FaultSchedule &faults_,
                const FleetOptions &options_,
                const BatchLatencyModel *brownout_model_)
        : arrivals(arrivals_), tiers(tiers_), model(model_),
          faults(faults_), options(options_),
          brownoutModel(options_.brownout.enabled ? brownout_model_
                                                  : nullptr)
    {
    }

    const std::vector<Request> &arrivals;
    const std::vector<QosTier> &tiers;
    const BatchLatencyModel &model;
    const FaultSchedule &faults;
    const FleetOptions &options;
    const BatchLatencyModel *brownoutModel; ///< null = no ladder

    std::vector<FaultEvent> faultEvents; ///< core-kind, time-sorted
    std::string runId;
    double serviceLatencySec = 0;
    unsigned maxBatch = 1;
    double brownoutServiceLatencySec = 0;
    unsigned brownoutMaxBatch = 1;

    std::unique_ptr<CheckpointStore> store;
    ServingState s;
    std::uint64_t eventIndex = 0; ///< lines in s.eventLog
    unsigned eventsSeen = 0;      ///< this process only (halt hook)
    bool haltRequested = false;
    std::optional<FleetResult> final_;

    void
    setUp()
    {
        simAssert(options.replicas > 0,
                  "a fleet needs at least one replica");
        simAssert(!tiers.empty(), "a fleet needs at least one tier");
        for (const Request &r : arrivals)
            simAssert(r.tier < tiers.size(),
                      "request tier out of range");
        for (const FaultEvent &e : faults.events())
            if (e.kind == FaultKind::CorePermanent ||
                e.kind == FaultKind::CoreTransient ||
                e.kind == FaultKind::CoreStraggler)
                faultEvents.push_back(e);
        maxBatch = model.maxBatch();
        // Service-time term of the admission estimate: under the
        // overload that makes admission matter, a request rides a
        // near-full batch, so the full-batch latency is the honest
        // estimate (the single-request latency undercounts and lets
        // through requests that then complete past their deadline).
        serviceLatencySec = model.latencySeconds(maxBatch);
        if (brownoutModel) {
            brownoutMaxBatch = brownoutModel->maxBatch();
            brownoutServiceLatencySec =
                brownoutModel->latencySeconds(brownoutMaxBatch);
        }

        runId = runFingerprint(arrivals, tiers, model, faults,
                               options, brownoutModel);
        s.replicas.resize(options.replicas);
        s.sparesLeft = options.warmSpares;
        s.scaleUpsLeft =
            options.autoscale.enabled
                ? options.autoscale.maxExtraReplicas : 0;
        s.nextAutoscaleSec = options.autoscale.checkIntervalSec;

        if (!options.checkpointDir.empty()) {
            store = std::make_unique<CheckpointStore>(
                options.checkpointDir, "serving");
            std::string payload;
            ServingState loaded;
            if (store->loadBlob(payload, runId) &&
                deserializeState(payload, loaded))
                s = std::move(loaded);
        }
        for (char c : s.eventLog)
            if (c == '\n')
                ++eventIndex;
    }

    void
    appendEvent(const std::string &line)
    {
        s.eventLog += line;
        s.eventLog += '\n';
        ++eventIndex;
        ++eventsSeen;
        if (options.onEvent)
            options.onEvent(line);
        if (options.haltAfterEvents &&
            eventsSeen >= options.haltAfterEvents)
            haltRequested = true;
    }

    std::string
    eventPrefix() const
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "[e%05llu] t=%s ",
                      static_cast<unsigned long long>(eventIndex),
                      formatSeconds(s.simTimeSec).c_str());
        return buf;
    }

    unsigned
    aliveReplicas() const
    {
        unsigned n = 0;
        for (const ReplicaState &r : s.replicas)
            if (r.status != kDead)
                ++n;
        return n;
    }

    /// @{ Brownout-aware curve: the ladder switches every *new*
    /// dispatch (and the admission estimate) to the cheaper model.
    const BatchLatencyModel &
    activeModel() const
    {
        return (brownoutModel && s.brownoutActive) ? *brownoutModel
                                                   : model;
    }

    unsigned
    activeMaxBatch() const
    {
        return (brownoutModel && s.brownoutActive) ? brownoutMaxBatch
                                                   : maxBatch;
    }

    double
    activeServiceLatencySec() const
    {
        return (brownoutModel && s.brownoutActive)
                   ? brownoutServiceLatencySec
                   : serviceLatencySec;
    }
    /// @}

    /**
     * HealthPolicy accounting: a core fault raises the replica's
     * score; crossing the threshold opens its breaker for cooloffSec
     * (score halved, so the first post-cooloff dispatch is the
     * half-open probe).
     */
    void
    bumpHealth(unsigned idx, double t)
    {
        if (!options.health.enabled)
            return;
        ReplicaState &r = s.replicas[idx];
        r.healthScore += options.health.faultScore;
        if (r.healthScore >= options.health.breakerThreshold) {
            r.breakerUntilSec = t + options.health.cooloffSec;
            r.healthScore = 0.5 * options.health.breakerThreshold;
            ++s.breakerTrips;
            appendEvent(eventPrefix() + "breaker open replica " +
                        std::to_string(idx) + " until " +
                        formatSeconds(r.breakerUntilSec));
        }
    }

    /**
     * Closed-loop client model: a shed request is re-offered after a
     * think delay (jittered when the retry policy says so), up to
     * maxReoffers times. The re-offer is a brand-new request — fresh
     * id, fresh offered count, fresh deadline from its re-offer
     * instant — so the conservation law stays exact.
     */
    void
    maybeReoffer(const PendingRequest &req, double t)
    {
        if (!options.reoffer.enabled ||
            req.reoffers >= options.reoffer.maxReoffers)
            return;
        double delay = options.reoffer.delaySec;
        if (options.retry.jitterFraction > 0) {
            const double f =
                std::min(options.retry.jitterFraction, 1.0);
            delay *= 1.0 - f * resilience::retryJitterUnit(
                                   options.retry, req.id,
                                   0x8000u + req.reoffers);
        }
        PendingRequest r;
        r.id = (std::uint64_t(1) << 48) + s.nextReofferId++;
        r.tier = req.tier;
        r.eligibleSec = t + delay;
        r.reoffers = std::uint8_t(req.reoffers + 1);
        ++s.reoffered;
        s.reoffers.push_back(r);
    }

    /** Shed accounting for one queue instance (+ the re-offer hook). */
    void
    shedInstance(const PendingRequest &req, double t)
    {
        if (req.copy)
            return; // the original carries the book-keeping
        ++s.shed;
        maybeReoffer(req, t);
    }

    /** Take the cadenced on-disk checkpoint (quiescent hook body). */
    void
    maybeCheckpoint()
    {
        if (haltRequested || !store)
            return;
        if (s.lastCheckpointSec >= 0 &&
            s.simTimeSec - s.lastCheckpointSec <
                options.checkpointIntervalSec)
            return;
        ++s.sequence;
        ++s.checkpointsSaved;
        s.lastCheckpointSec = s.simTimeSec;
        appendEvent(eventPrefix() + "checkpoint seq " +
                    std::to_string(static_cast<unsigned long long>(
                        s.sequence)));
        store->saveBlob(runId, serializeState(s));
    }

    /**
     * Re-queue an in-flight request its replica lost. Retry number
     * attempt is launched only while RetryPolicy permits it — with
     * giveUpAfterSeconds wired to the tier deadline, a request whose
     * cumulative retry delay cannot fit its SLO is abandoned instead
     * of burning capacity (counted as shed).
     */
    void
    requeueLost(const PendingRequest &req, double t)
    {
        if (req.hedged && sortedContains(s.hedgedDone, req.id))
            return; // its twin already answered
        resilience::RetryPolicy policy = options.retry;
        policy.giveUpAfterSeconds = tiers[req.tier].deadlineSec;
        if (!resilience::retryPermitted(policy, req.attempt)) {
            shedInstance(req, t);
            return;
        }
        PendingRequest r = req;
        // Jitter keys on the request id: a correlated fault drops a
        // whole rack's worth of in-flight work at one instant, and
        // identical backoff would re-dispatch it as one synchronized
        // wave. Bit-identical to the unjittered delay at fraction 0.
        r.eligibleSec = t + policy.timeoutSec +
                        resilience::retryDelaySecondsJittered(
                            policy, req.attempt, req.id);
        ++r.attempt;
        ++s.retries;
        s.queue.push_back(r);
    }

    /** Apply the single next due fault (one poll dispatch's worth). */
    void
    applyOneFault(double t)
    {
        const FaultEvent e = faultEvents[s.faultCursor++];
        if (e.target >= s.replicas.size())
            return; // outside the fleet
        ReplicaState &r = s.replicas[e.target];
        if (r.status == kDead)
            return;
        switch (e.kind) {
          case FaultKind::CorePermanent: {
            ++s.replicaFailures;
            for (const PendingRequest &req : r.batch)
                requeueLost(req, t);
            r.batch.clear();
            r.hedgeIssued = 0;
            if (s.sparesLeft > 0) {
                --s.sparesLeft;
                ++s.failovers;
                r.status = kSpinningUp;
                r.readyAtSec = t + options.failoverSec;
                r.stragglerFactor = 1.0;
                r.stragglerUntilSec = 0;
                r.healthScore = 0; // the spare is a fresh machine
                r.breakerUntilSec = 0;
                appendEvent(eventPrefix() + "failover replica " +
                            std::to_string(e.target) + " ready " +
                            formatSeconds(r.readyAtSec));
            } else {
                r.status = kDead;
                appendEvent(eventPrefix() + "replica " +
                            std::to_string(e.target) + " dead");
            }
            break;
          }
          case FaultKind::CoreTransient: {
            ++s.replicaFailures;
            for (const PendingRequest &req : r.batch)
                requeueLost(req, t);
            r.batch.clear();
            r.hedgeIssued = 0;
            r.status = kSpinningUp;
            r.readyAtSec = t + e.durationSec;
            appendEvent(eventPrefix() + "replica " +
                        std::to_string(e.target) + " outage until " +
                        formatSeconds(r.readyAtSec));
            bumpHealth(e.target, t);
            break;
          }
          case FaultKind::CoreStraggler: {
            r.stragglerFactor = e.severity;
            r.stragglerUntilSec =
                e.durationSec > 0 ? t + e.durationSec : kInf;
            appendEvent(eventPrefix() + "replica " +
                        std::to_string(e.target) + " straggles x" +
                        formatSeconds(e.severity));
            bumpHealth(e.target, t);
            break;
          }
          default:
            break; // link/ECC faults do not apply to stateless replicas
        }
    }

    /** Record one answered request (hedged copies dedup first-wins). */
    void
    complete(const PendingRequest &req, double t, bool degraded)
    {
        if (req.hedged) {
            if (sortedContains(s.hedgedDone, req.id))
                return; // the losing copy
            sortedInsert(s.hedgedDone, req.id);
        }
        ++s.completed;
        const double latency = t - req.arrivalSec;
        const bool on_time = t <= req.deadlineSec;
        s.latencies.push_back(latency);
        s.completionsSec.push_back(t);
        s.completedOnTime.push_back(on_time ? 1 : 0);
        if (on_time)
            ++s.goodput;
        if (degraded) {
            ++s.brownoutCompleted;
            if (on_time)
                ++s.brownoutGoodput;
        }
    }

    /**
     * Admission control at the front door. Sheds when the queue is
     * full, or when a sheddable request's estimated completion
     * (queue-drain at full-batch service rate plus one service time)
     * cannot meet its deadline.
     */
    void
    admit(const Request &arrival)
    {
        PendingRequest r;
        r.id = arrival.id;
        r.tier = arrival.tier;
        r.arrivalSec = arrival.arrivalSec;
        offerPending(r, arrival.arrivalSec);
    }

    /**
     * One offer at the front door — a fresh arrival or a closed-loop
     * re-offer. Each call counts offered exactly once and ends
     * admitted or shed, so conservation holds per instance.
     */
    void
    offerPending(PendingRequest r, double t)
    {
        ++s.offered;
        const QosTier &tier = tiers[r.tier];
        r.deadlineSec = r.arrivalSec + tier.deadlineSec;
        r.eligibleSec = r.arrivalSec;
        if (options.admission.enabled) {
            if (options.admission.queueCapacity &&
                s.queue.size() >= options.admission.queueCapacity) {
                shedInstance(r, t);
                return;
            }
            if (tier.sheddable) {
                const unsigned alive = aliveReplicas();
                // The estimate rides the *active* curve: on the
                // brownout ladder the cheaper model's higher service
                // rate is precisely why the fleet can stop shedding.
                const double rate =
                    alive ? double(alive) * double(activeMaxBatch()) /
                                activeServiceLatencySec()
                          : 0;
                const double wait =
                    rate > 0 ? double(s.queue.size()) / rate : kInf;
                if (wait + activeServiceLatencySec() >
                    tier.deadlineSec * options.admission.slackFactor) {
                    shedInstance(r, t);
                    return;
                }
            }
        }
        ++s.admitted;
        s.queue.push_back(r);
    }

    /**
     * Hedge a straggling dispatch: duplicates of its unanswered
     * requests re-enter the queue; first completion wins.
     */
    void
    hedgeDispatch(unsigned idx, double t)
    {
        ReplicaState &r = s.replicas[idx];
        r.hedgeIssued = 1;
        unsigned copies = 0;
        for (PendingRequest &req : r.batch) {
            if (sortedContains(s.hedgedDone, req.id))
                continue;
            req.hedged = 1;
            sortedInsert(s.hedgedIds, req.id);
            PendingRequest dup = req;
            dup.copy = 1;
            dup.eligibleSec = t;
            s.queue.push_back(dup);
            ++copies;
            ++s.hedges;
        }
        if (copies)
            appendEvent(eventPrefix() + "hedge replica " +
                        std::to_string(idx) + " copies " +
                        std::to_string(copies));
    }

    /**
     * Drop queue entries that can no longer matter: losing hedge
     * copies, and — when shedding is on — requests already past
     * their deadline (the expired-at-dispatch drop).
     */
    void
    purgeQueue(double t)
    {
        std::vector<PendingRequest> kept;
        kept.reserve(s.queue.size());
        for (const PendingRequest &req : s.queue) {
            if (req.hedged && sortedContains(s.hedgedDone, req.id))
                continue;
            if (options.admission.enabled && t > req.deadlineSec) {
                shedInstance(req, t);
                continue;
            }
            kept.push_back(req);
        }
        s.queue.swap(kept);
    }

    /**
     * Form one batch for replica @p idx from the eligible queue.
     * MPAM-style reservation first — each tier gets up to its
     * reservedSlots before the remainder fills by deadline order —
     * so a burst of sheddable traffic cannot starve the guaranteed
     * tier out of every batch.
     */
    void
    dispatchReplica(unsigned idx, double t)
    {
        ReplicaState &r = s.replicas[idx];
        std::vector<PendingRequest> eligible, waiting;
        for (const PendingRequest &req : s.queue)
            (req.eligibleSec <= t ? eligible : waiting)
                .push_back(req);
        if (eligible.empty())
            return;
        std::stable_sort(eligible.begin(), eligible.end(),
                         requestBefore);

        const std::size_t cap = activeMaxBatch();
        std::vector<char> taken(eligible.size(), 0);
        std::vector<PendingRequest> batch;
        for (std::uint32_t ti = 0;
             ti < std::uint32_t(tiers.size()) && batch.size() < cap;
             ++ti) {
            unsigned got = 0;
            for (std::size_t i = 0; i < eligible.size() &&
                                    got < tiers[ti].reservedSlots &&
                                    batch.size() < cap;
                 ++i) {
                if (taken[i] || eligible[i].tier != ti)
                    continue;
                taken[i] = 1;
                batch.push_back(eligible[i]);
                ++got;
            }
        }
        for (std::size_t i = 0;
             i < eligible.size() && batch.size() < cap; ++i) {
            if (taken[i])
                continue;
            taken[i] = 1;
            batch.push_back(eligible[i]);
        }

        for (std::size_t i = 0; i < eligible.size(); ++i)
            if (!taken[i])
                waiting.push_back(eligible[i]);
        s.queue.swap(waiting);

        const double factor =
            t < r.stragglerUntilSec ? r.stragglerFactor : 1.0;
        r.status = kBusy;
        r.dispatchedSec = t;
        r.busyUntilSec =
            t + activeModel().latencySeconds(unsigned(batch.size())) *
                    factor;
        r.hedgeIssued = 0;
        r.degraded = (brownoutModel && s.brownoutActive) ? 1 : 0;
        r.batch = std::move(batch);
        if (obs::Tracer *tracer = obs::Tracer::current()) {
            const auto ns = [](double sec) {
                return std::uint64_t(std::llround(sec * 1e9));
            };
            tracer->span(obs::Domain::Serving, idx + 2,
                         "serving.batch", ns(t),
                         ns(r.busyUntilSec) - ns(t),
                         r.batch.size());
        }
    }

    /** Earliest future decision instant (kInf = nothing left). */
    double
    nextInstant(double t) const
    {
        double next = kInf;
        if (s.arrivalCursor < arrivals.size())
            next = std::min(next,
                            arrivals[s.arrivalCursor].arrivalSec);
        if (s.faultCursor < faultEvents.size())
            next = std::min(next,
                            faultEvents[s.faultCursor].timeSec);
        for (const ReplicaState &r : s.replicas) {
            if (r.status == kBusy) {
                next = std::min(next, r.busyUntilSec);
                if (options.hedge.enabled && !r.hedgeIssued) {
                    const double h =
                        r.dispatchedSec + options.hedge.afterSec;
                    if (h < r.busyUntilSec)
                        next = std::min(next, h);
                }
            } else if (r.status == kSpinningUp) {
                next = std::min(next, r.readyAtSec);
            }
        }
        for (const PendingRequest &req : s.queue)
            if (req.eligibleSec > t)
                next = std::min(next, req.eligibleSec);
        for (const PendingRequest &req : s.reoffers)
            if (req.eligibleSec > t)
                next = std::min(next, req.eligibleSec);
        if (options.health.enabled && !s.queue.empty()) {
            // An open breaker is a decision instant: the replica is
            // idle but skipped, and nothing else may wake the step
            // before the half-open probe becomes legal.
            for (const ReplicaState &r : s.replicas)
                if (r.status == kIdle && r.breakerUntilSec > t)
                    next = std::min(next, r.breakerUntilSec);
        }
        if (brownoutModel && s.brownoutActive &&
            options.brownout.minResidencySec > 0) {
            const double residency =
                s.brownoutSinceSec + options.brownout.minResidencySec;
            if (residency > t)
                next = std::min(next, residency);
        }
        if (options.autoscale.enabled && !s.queue.empty() &&
            s.scaleUpsLeft > 0)
            next = std::min(next, std::max(s.nextAutoscaleSec, t));
        return next;
    }

    /** True when no request can ever be answered again. */
    bool
    fleetDoomed() const
    {
        return aliveReplicas() == 0 && s.sparesLeft == 0 &&
               s.scaleUpsLeft == 0;
    }

    /** Arm the chain at @p t: quiescent(0), fault poll(1), step(2). */
    void
    armStep(des::Kernel &k, double t)
    {
        s.simTimeSec = t;
        k.scheduleQuiescent(t, 0);
        k.schedule(t, 1, "serving.poll-faults",
                   [this](des::Kernel &kk) { pollFaults(kk); });
        k.schedule(t, 2, "serving.step",
                   [this](des::Kernel &kk) { stepOnce(kk); });
    }

    /** Fault poll event: ONE due fault, re-arm while more are due. */
    void
    pollFaults(des::Kernel &k)
    {
        if (haltRequested) {
            final_ = result();
            k.stop();
            return;
        }
        if (s.faultCursor < faultEvents.size() &&
            faultEvents[s.faultCursor].timeSec <= s.simTimeSec) {
            applyOneFault(s.simTimeSec);
            k.schedule(k.now(), 1, "serving.poll-faults",
                       [this](des::Kernel &kk) { pollFaults(kk); });
        }
    }

    /** The step event: one decision instant, then re-arm or finish. */
    void
    stepOnce(des::Kernel &k)
    {
        if (haltRequested) {
            final_ = result();
            k.stop();
            return;
        }
        const double t = s.simTimeSec;

        // Completions first: capacity freed at t serves requests
        // arriving at the same instant.
        for (ReplicaState &r : s.replicas) {
            if (r.status != kBusy || r.busyUntilSec > t)
                continue;
            for (const PendingRequest &req : r.batch)
                complete(req, t, r.degraded != 0);
            r.batch.clear();
            r.status = kIdle;
            r.hedgeIssued = 0;
            r.degraded = 0;
            if (options.health.enabled)
                r.healthScore *= options.health.successDecay;
        }
        for (ReplicaState &r : s.replicas)
            if (r.status == kSpinningUp && r.readyAtSec <= t)
                r.status = kIdle;
        while (s.arrivalCursor < arrivals.size() &&
               arrivals[s.arrivalCursor].arrivalSec <= t)
            admit(arrivals[s.arrivalCursor++]);
        if (!s.reoffers.empty()) {
            // Closed-loop clients whose think time has elapsed
            // re-offer their shed request as a brand-new arrival.
            std::vector<PendingRequest> later;
            std::vector<PendingRequest> due;
            for (const PendingRequest &req : s.reoffers)
                (req.eligibleSec <= t ? due : later).push_back(req);
            s.reoffers.swap(later);
            for (PendingRequest &req : due) {
                req.arrivalSec = t;
                offerPending(req, t);
            }
        }
        if (options.hedge.enabled) {
            for (unsigned i = 0; i < unsigned(s.replicas.size());
                 ++i) {
                ReplicaState &r = s.replicas[i];
                if (r.status == kBusy && !r.hedgeIssued &&
                    t >= r.dispatchedSec + options.hedge.afterSec)
                    hedgeDispatch(i, t);
            }
        }
        if (options.autoscale.enabled && t >= s.nextAutoscaleSec) {
            if (s.scaleUpsLeft > 0 &&
                s.queue.size() >
                    options.autoscale.queueDepthPerReplica *
                        std::size_t(aliveReplicas())) {
                --s.scaleUpsLeft;
                ++s.autoscaleUps;
                ReplicaState fresh;
                fresh.status = kSpinningUp;
                fresh.readyAtSec = t + options.autoscale.spinUpSec;
                s.replicas.push_back(fresh);
                appendEvent(eventPrefix() + "autoscale to " +
                            std::to_string(s.replicas.size()) +
                            " replicas ready " +
                            formatSeconds(fresh.readyAtSec));
            }
            s.nextAutoscaleSec =
                t + options.autoscale.checkIntervalSec;
        }

        if (fleetDoomed()) {
            // Nothing can serve again: account every queued and
            // future request as shed and drain.
            std::uint64_t lost = 0;
            for (const PendingRequest &req : s.queue)
                if (!req.copy)
                    ++lost;
            s.shed += lost;
            s.queue.clear();
            // Pending re-offers were never offered; dropping them
            // keeps completed + shed == offered intact.
            s.reoffers.clear();
            const std::uint64_t remaining =
                arrivals.size() - s.arrivalCursor;
            s.offered += remaining;
            s.shed += remaining;
            s.arrivalCursor = arrivals.size();
            appendEvent(eventPrefix() + "fleet dead, dropped " +
                        std::to_string(static_cast<unsigned long long>(
                            lost + remaining)));
            if (haltRequested) {
                final_ = result();
                k.stop();
                return;
            }
            final_ = finish();
            return;
        }

        purgeQueue(t);
        if (brownoutModel) {
            const std::size_t alive =
                std::max<std::size_t>(aliveReplicas(), 1);
            if (!s.brownoutActive &&
                s.queue.size() >
                    options.brownout.enterQueueDepthPerReplica *
                        alive) {
                s.brownoutActive = 1;
                s.brownoutSinceSec = t;
                ++s.brownoutEntries;
                appendEvent(eventPrefix() + "brownout enter depth " +
                            std::to_string(s.queue.size()));
            } else if (s.brownoutActive &&
                       s.queue.size() <=
                           options.brownout.exitQueueDepthPerReplica *
                               alive &&
                       t - s.brownoutSinceSec >=
                           options.brownout.minResidencySec) {
                s.brownoutActive = 0;
                s.brownoutSec += t - s.brownoutSinceSec;
                appendEvent(eventPrefix() + "brownout exit depth " +
                            std::to_string(s.queue.size()));
            }
        }
        for (unsigned i = 0; i < unsigned(s.replicas.size()); ++i) {
            if (s.replicas[i].status != kIdle || s.queue.empty())
                continue;
            if (options.health.enabled &&
                t < s.replicas[i].breakerUntilSec)
                continue; // breaker open: skip until half-open probe
            dispatchReplica(i, t);
        }
        if (obs::Tracer *tracer = obs::Tracer::current())
            tracer->counter(obs::Domain::Serving, "serving.queue",
                            std::uint64_t(std::llround(t * 1e9)),
                            double(s.queue.size()));

        if (haltRequested) {
            final_ = result();
            k.stop();
            return;
        }

        const double next = nextInstant(t);
        if (next == kInf) {
            final_ = finish();
            return;
        }
        simAssert(next > t,
                  "serving chain must advance the sim clock");
        armStep(k, next);
    }

    /** Snapshot counters into a result (shared by halt and finish). */
    FleetResult
    result() const
    {
        FleetResult r;
        r.offered = s.offered;
        r.admitted = s.admitted;
        r.shed = s.shed;
        r.completed = s.completed;
        r.goodput = s.goodput;
        r.retries = s.retries;
        r.hedges = s.hedges;
        r.replicaFailures = s.replicaFailures;
        r.failovers = s.failovers;
        r.autoscaleUps = s.autoscaleUps;
        r.checkpointsSaved = s.checkpointsSaved;
        r.reoffered = s.reoffered;
        r.breakerTrips = s.breakerTrips;
        r.brownoutEntries = s.brownoutEntries;
        r.brownoutCompleted = s.brownoutCompleted;
        r.brownoutGoodput = s.brownoutGoodput;
        r.brownoutSec = s.brownoutSec;
        if (s.brownoutActive)
            r.brownoutSec += s.simTimeSec - s.brownoutSinceSec;
        r.halted = haltRequested;
        r.makespanSec = s.simTimeSec;
        r.latencies = s.latencies;
        r.completionsSec = s.completionsSec;
        r.completedOnTime = s.completedOnTime;
        r.eventLog = s.eventLog;
        std::vector<double> sorted = s.latencies;
        std::sort(sorted.begin(), sorted.end());
        r.p50 = percentile(sorted, 0.50);
        r.p99 = percentile(sorted, 0.99);
        r.p999 = percentile(sorted, 0.999);
        return r;
    }

    /** Natural completion: charge totals, drop the checkpoint file. */
    FleetResult
    finish()
    {
        FleetResult r = result();
        if (store)
            store->remove();
        runtime::ServingCounters delta;
        delta.servingRuns = 1;
        delta.offered = r.offered;
        delta.admitted = r.admitted;
        delta.shed = r.shed;
        delta.completed = r.completed;
        delta.goodput = r.goodput;
        delta.retries = r.retries;
        delta.hedges = r.hedges;
        delta.replicaFailures = r.replicaFailures;
        delta.failovers = r.failovers;
        delta.autoscaleUps = r.autoscaleUps;
        delta.checkpointsSaved = r.checkpointsSaved;
        delta.reoffered = r.reoffered;
        delta.breakerTrips = r.breakerTrips;
        delta.brownoutEntries = r.brownoutEntries;
        runtime::chargeServing(delta);
        if (obs::Tracer *tracer = obs::Tracer::current())
            tracer->span(obs::Domain::Serving, 1, "serving.run", 0,
                         std::uint64_t(
                             std::llround(r.makespanSec * 1e9)),
                         r.completed);
        return r;
    }

    FleetResult
    run()
    {
        setUp();
        des::Kernel kernel;
        // Checkpoints ride the kernel's quiescent points: no event is
        // mid-dispatch there, so the ServingState is consistent by
        // construction.
        kernel.onQuiescent(
            [this](des::Kernel &) { maybeCheckpoint(); });
        kernel.advanceTo(s.simTimeSec); // resumes re-enter mid-run
        armStep(kernel, s.simTimeSec);
        kernel.run();
        simAssert(final_.has_value(),
                  "serving kernel drained without a terminal state");
        return *final_;
    }
};

} // anonymous namespace

std::string
FleetResult::report() const
{
    std::ostringstream os;
    os << "serving run: " << (halted ? "halted" : "completed")
       << "\n";
    os << "  makespan       " << formatSeconds(makespanSec) << "\n";
    os << "  offered        " << offered << "\n";
    os << "  admitted       " << admitted << "\n";
    os << "  shed           " << shed << "\n";
    os << "  completed      " << completed << "\n";
    os << "  goodput        " << goodput << "\n";
    os << "  retries        " << retries << "\n";
    os << "  hedges         " << hedges << "\n";
    os << "  failures       " << replicaFailures << "\n";
    os << "  failovers      " << failovers << "\n";
    os << "  autoscale ups  " << autoscaleUps << "\n";
    os << "  checkpoints    " << checkpointsSaved << "\n";
    os << "  reoffered      " << reoffered << "\n";
    os << "  breaker trips  " << breakerTrips << "\n";
    os << "  brownouts      " << brownoutEntries << "\n";
    os << "  brownout done  " << brownoutCompleted << "\n";
    os << "  brownout sec   " << formatSeconds(brownoutSec) << "\n";
    os << "  p50            " << formatSeconds(p50) << "\n";
    os << "  p99            " << formatSeconds(p99) << "\n";
    os << "  p999           " << formatSeconds(p999) << "\n";
    os << "events:\n" << eventLog;
    return os.str();
}

std::string
runFingerprint(const std::vector<Request> &arrivals,
               const std::vector<QosTier> &tiers,
               const BatchLatencyModel &model,
               const resilience::FaultSchedule &faults,
               const FleetOptions &options,
               const BatchLatencyModel *brownout_model)
{
    std::string s;
    s.reserve(512);
    s += "serving-run:";
    // Arrivals are pure data; fingerprint them exactly (FNV-1a over
    // the packed stream keeps the id short).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const Request &r : arrivals) {
        mix(r.id);
        std::uint64_t bits;
        std::memcpy(&bits, &r.arrivalSec, sizeof(bits));
        mix(bits);
        mix(r.tier);
    }
    putU64(s, arrivals.size());
    putU64(s, h);
    s += fingerprint(tiers);
    s += model.fingerprint();
    s += faults.fingerprint();
    s += "fleet:";
    putU64(s, options.replicas);
    putU64(s, options.warmSpares);
    putBits(s, options.failoverSec);
    putU64(s, options.admission.enabled ? 1 : 0);
    putU64(s, options.admission.queueCapacity);
    putBits(s, options.admission.slackFactor);
    putU64(s, options.hedge.enabled ? 1 : 0);
    putBits(s, options.hedge.afterSec);
    putU64(s, options.autoscale.enabled ? 1 : 0);
    putBits(s, options.autoscale.checkIntervalSec);
    putU64(s, options.autoscale.queueDepthPerReplica);
    putBits(s, options.autoscale.spinUpSec);
    putU64(s, options.autoscale.maxExtraReplicas);
    putU64(s, options.retry.maxRetries);
    putBits(s, options.retry.timeoutSec);
    putBits(s, options.retry.backoffBaseSec);
    putBits(s, options.retry.backoffMultiplier);
    putBits(s, options.retry.backoffCapSec);
    putBits(s, options.retry.giveUpAfterSeconds);
    putBits(s, options.retry.jitterFraction);
    putU64(s, options.retry.jitterSeed);
    putU64(s, options.health.enabled ? 1 : 0);
    putBits(s, options.health.faultScore);
    putBits(s, options.health.successDecay);
    putBits(s, options.health.breakerThreshold);
    putBits(s, options.health.cooloffSec);
    putU64(s, options.brownout.enabled ? 1 : 0);
    putU64(s, options.brownout.enterQueueDepthPerReplica);
    putU64(s, options.brownout.exitQueueDepthPerReplica);
    putBits(s, options.brownout.minResidencySec);
    putU64(s, options.reoffer.enabled ? 1 : 0);
    putBits(s, options.reoffer.delaySec);
    putU64(s, options.reoffer.maxReoffers);
    if (options.brownout.enabled && brownout_model) {
        s += "brownout:";
        s += brownout_model->fingerprint();
    }
    putBits(s, options.checkpointIntervalSec);
    return s;
}

FleetResult
runFleet(const std::vector<Request> &arrivals,
         const std::vector<QosTier> &tiers,
         const BatchLatencyModel &model, const FaultSchedule &faults,
         const FleetOptions &options,
         const BatchLatencyModel *brownout_model)
{
    FleetEngine engine{arrivals, tiers,   model,
                       faults,   options, brownout_model};
    return engine.run();
}

} // namespace serving
} // namespace ascend
