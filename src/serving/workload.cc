/**
 * @file
 * Seeded arrival-stream synthesis.
 */

#include "serving/workload.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ascend {
namespace serving {

namespace {

void
putBits(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    s += std::to_string(bits);
    s += ',';
}

void
putU64(std::string &s, std::uint64_t v)
{
    s += std::to_string(v);
    s += ',';
}

/** Jitter stream: one draw per arrival ordinal. */
constexpr std::uint64_t kJitterSalt = 0x9e3779b97f4a7c15ULL;
/** Tier stream: independent of the jitter stream. */
constexpr std::uint64_t kTierSalt = 0xd1342543de82ef95ULL;

std::uint32_t
drawTier(Rng &rng, const std::vector<QosTier> &tiers)
{
    // Cumulative-share walk; any residual mass (shares not summing
    // to one) falls to the last tier, so the draw always lands.
    const double u = rng.uniformReal();
    double cum = 0;
    for (std::size_t i = 0; i + 1 < tiers.size(); ++i) {
        cum += tiers[i].share;
        if (u < cum)
            return std::uint32_t(i);
    }
    return std::uint32_t(tiers.size() - 1);
}

} // anonymous namespace

std::vector<Request>
generateArrivals(const ArrivalSpec &spec,
                 const std::vector<QosTier> &tiers)
{
    std::vector<Request> out;
    if (tiers.empty() || spec.ratePerSec <= 0 || spec.horizonSec <= 0)
        return out;
    simAssert(spec.burstFactor >= 1.0,
              "burstFactor models a peak over the calm rate (>= 1)");
    simAssert(spec.burstDuty >= 0 && spec.burstDuty <= 1,
              "burstDuty is a fraction of the period");

    // Square-wave modulation, normalized so the mean over one period
    // is exactly ratePerSec: each period spends burstDuty at
    // calm*burstFactor and the rest at calm.
    const bool bursty =
        spec.burstPeriodSec > 0 && spec.burstFactor > 1.0 &&
        spec.burstDuty > 0 && spec.burstDuty < 1;
    const double meanFactor =
        bursty ? spec.burstDuty * spec.burstFactor +
                     (1.0 - spec.burstDuty)
               : 1.0;
    const double calmRate = spec.ratePerSec / meanFactor;
    const double peakRate = calmRate * spec.burstFactor;

    Rng jitter(spec.seed ^ kJitterSalt);
    Rng tierRng(spec.seed ^ kTierSalt);

    out.reserve(std::size_t(spec.ratePerSec * spec.horizonSec) + 8);

    // Arrival j lands where the cumulative rate integral Lambda(t)
    // reaches j + u_j. Lambda is piecewise linear (peak segment then
    // calm segment per period), so the walk below merges the target
    // sequence against segment boundaries: O(arrivals + segments),
    // pure arithmetic.
    double segStart = 0;    ///< current segment start time
    double lambdaAtSeg = 0; ///< Lambda(segStart)
    bool inPeak = bursty;   ///< each period opens with its burst
    std::uint64_t j = 0;
    while (segStart < spec.horizonSec) {
        const double rate = inPeak ? peakRate : calmRate;
        double segLen;
        if (!bursty) {
            segLen = spec.horizonSec - segStart;
        } else {
            segLen = inPeak
                         ? spec.burstPeriodSec * spec.burstDuty
                         : spec.burstPeriodSec * (1.0 - spec.burstDuty);
            segLen = std::min(segLen, spec.horizonSec - segStart);
        }
        const double lambdaEnd = lambdaAtSeg + rate * segLen;
        while (true) {
            const double target = double(j) + jitter.uniformReal();
            if (target >= lambdaEnd)
                break; // next arrival lies beyond this segment
            const double t =
                segStart + (target - lambdaAtSeg) / rate;
            if (t >= spec.horizonSec)
                break;
            Request r;
            r.id = j;
            r.arrivalSec = t;
            r.tier = drawTier(tierRng, tiers);
            out.push_back(r);
            ++j;
        }
        segStart += segLen;
        lambdaAtSeg = lambdaEnd;
        if (bursty)
            inPeak = !inPeak;
    }
    return out;
}

std::vector<Request>
replayTrace(const std::vector<double> &times_sec,
            const std::vector<QosTier> &tiers, std::uint64_t seed)
{
    std::vector<Request> out;
    if (tiers.empty())
        return out;
    Rng tierRng(seed ^ kTierSalt);
    out.reserve(times_sec.size());
    for (std::size_t i = 0; i < times_sec.size(); ++i) {
        simAssert(i == 0 || times_sec[i] >= times_sec[i - 1],
                  "trace arrival times must be sorted ascending");
        Request r;
        r.id = i;
        r.arrivalSec = times_sec[i];
        r.tier = drawTier(tierRng, tiers);
        out.push_back(r);
    }
    return out;
}

std::string
fingerprint(const ArrivalSpec &spec)
{
    std::string s;
    s.reserve(128);
    s += "arrivals:";
    putU64(s, spec.seed);
    putBits(s, spec.horizonSec);
    putBits(s, spec.ratePerSec);
    putBits(s, spec.burstFactor);
    putBits(s, spec.burstPeriodSec);
    putBits(s, spec.burstDuty);
    return s;
}

std::string
fingerprint(const std::vector<QosTier> &tiers)
{
    std::string s;
    s.reserve(64 + tiers.size() * 48);
    s += "tiers:";
    putU64(s, tiers.size());
    for (const QosTier &t : tiers) {
        s += t.name;
        s += ';';
        putBits(s, t.deadlineSec);
        putBits(s, t.share);
        putU64(s, t.sheddable ? 1 : 0);
        putU64(s, t.reservedSlots);
    }
    return s;
}

} // namespace serving
} // namespace ascend
