/**
 * @file
 * Open-loop serving workloads: QoS tiers and seeded arrival streams.
 *
 * The fleet simulator is open-loop: requests arrive on their own
 * clock whether or not the fleet keeps up, which is what makes
 * overload a reachable state instead of a self-throttling one. This
 * module generates the *when and what* of demand as pure data — a
 * seeded, time-sorted list of Requests — the same way
 * resilience::FaultSchedule generates failure.
 *
 * Determinism contract (shared with FaultSchedule):
 *  - an ArrivalSpec (rate, burst shape, seed) maps to exactly one
 *    arrival list on every platform. Arrival j lands where the
 *    cumulative rate integral reaches j + u_j (uniform jitter), so
 *    the stream is quasi-Poisson with the exact requested mean and is
 *    computed with arithmetic only — no libm transcendentals whose
 *    last bits differ across implementations;
 *  - tier assignment draws from its own RNG stream keyed off the
 *    seed, so adding a tier reshuffles labels but never moves an
 *    arrival time;
 *  - generation never consults wall clock or thread count; the list
 *    is byte-stable input to the (serial) fleet engine.
 */

#ifndef ASCEND_SERVING_WORKLOAD_HH
#define ASCEND_SERVING_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ascend {
namespace serving {

/**
 * One request class: a latency SLO plus the degradation contract.
 * Mirrors the chip-level MPAM story (bench_qos_mpam) one level up:
 * reservedSlots are the fleet analogue of per-tier LLC ways — batch
 * slots a tier is guaranteed at every dispatch — and sheddable tiers
 * are the ones admission control may drop under overload.
 */
struct QosTier
{
    std::string name = "default";
    double deadlineSec = 0.05; ///< SLO measured from arrival
    double share = 1.0;        ///< fraction of offered requests
    bool sheddable = true;     ///< admission control may drop these
    unsigned reservedSlots = 0; ///< guaranteed batch slots per dispatch
};

/** One offered request. */
struct Request
{
    std::uint64_t id = 0;    ///< arrival ordinal (stable identity)
    double arrivalSec = 0;   ///< when it enters the front door
    std::uint32_t tier = 0;  ///< index into the QosTier list
};

/**
 * Shape of the offered-load process. burstFactor > 1 modulates the
 * rate with a square wave (burstDuty of every burstPeriodSec runs at
 * the elevated rate); the calm rate is normalized so the *mean* over
 * a whole period is exactly ratePerSec — sweeping offered load moves
 * one knob whether or not bursts are on.
 */
struct ArrivalSpec
{
    std::uint64_t seed = 0x5eed;
    double horizonSec = 1.0;  ///< arrivals cover [0, horizonSec)
    double ratePerSec = 0;    ///< mean offered requests per second
    double burstFactor = 1.0; ///< peak/calm rate ratio (>= 1)
    double burstPeriodSec = 0; ///< square-wave period; 0 = flat rate
    double burstDuty = 0.5;   ///< fraction of a period at peak rate
};

/**
 * Deterministically expand @p spec into concrete arrivals with tiers
 * assigned by cumulative @p tiers share. Sorted by (arrivalSec, id);
 * an empty tier list or zero rate yields an empty stream.
 */
std::vector<Request> generateArrivals(const ArrivalSpec &spec,
                                      const std::vector<QosTier> &tiers);

/**
 * Trace replay: wrap explicit arrival instants (sorted ascending)
 * into Requests, assigning tiers from @p seed exactly like
 * generateArrivals does.
 */
std::vector<Request> replayTrace(const std::vector<double> &times_sec,
                                 const std::vector<QosTier> &tiers,
                                 std::uint64_t seed);

/** Exact identity of @p spec (checkpoint/runId fingerprints). */
std::string fingerprint(const ArrivalSpec &spec);

/** Exact identity of the tier list. */
std::string fingerprint(const std::vector<QosTier> &tiers);

} // namespace serving
} // namespace ascend

#endif // ASCEND_SERVING_WORKLOAD_HH
