/**
 * @file
 * Batch latency curve construction and interpolation.
 */

#include "serving/latency_model.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "graph/lower.hh"

namespace ascend {
namespace serving {

BatchLatencyModel
BatchLatencyModel::fromPoints(
    std::vector<std::pair<unsigned, double>> points)
{
    simAssert(!points.empty(),
              "a latency curve needs at least one point");
    std::sort(points.begin(), points.end());
    for (std::size_t i = 0; i < points.size(); ++i) {
        simAssert(points[i].first >= 1 && points[i].second > 0,
                  "latency points need batch >= 1 and positive time");
        simAssert(i == 0 || points[i].first > points[i - 1].first,
                  "latency curve batches must be strictly increasing");
        simAssert(i == 0 || points[i].second >= points[i - 1].second,
                  "batch latency cannot shrink as the batch grows");
    }
    BatchLatencyModel m;
    m.points_ = std::move(points);
    return m;
}

BatchLatencyModel
BatchLatencyModel::linear(double base_sec, double per_request_sec,
                          unsigned max_batch)
{
    simAssert(base_sec > 0 && per_request_sec >= 0 && max_batch >= 1,
              "linear latency curve needs positive base and batch");
    std::vector<std::pair<unsigned, double>> pts;
    pts.emplace_back(1, base_sec + per_request_sec);
    if (max_batch > 1)
        pts.emplace_back(max_batch,
                         base_sec + per_request_sec * max_batch);
    return fromPoints(std::move(pts));
}

BatchLatencyModel
BatchLatencyModel::fromNetwork(
    const runtime::SimSession &session,
    const std::function<model::Network(unsigned)> &builder,
    const std::vector<unsigned> &batches, double clock_ghz)
{
    simAssert(!batches.empty(), "need at least one anchor batch");
    simAssert(clock_ghz > 0, "clock must be positive");
    std::vector<std::pair<unsigned, double>> pts;
    pts.reserve(batches.size());
    for (unsigned b : batches) {
        const core::SimResult r =
            session.inferenceResult(builder(b));
        pts.emplace_back(b, r.seconds(clock_ghz));
    }
    return fromPoints(std::move(pts));
}

BatchLatencyModel
BatchLatencyModel::fromGraph(
    const runtime::SimSession &session,
    const std::function<graph::Graph(unsigned)> &builder,
    const std::vector<unsigned> &batches, double clock_ghz)
{
    simAssert(!batches.empty(), "need at least one anchor batch");
    simAssert(clock_ghz > 0, "clock must be positive");
    std::vector<std::pair<unsigned, double>> pts;
    pts.reserve(batches.size());
    for (unsigned b : batches) {
        const core::SimResult r =
            graph::graphResult(session, builder(b));
        pts.emplace_back(b, r.seconds(clock_ghz));
    }
    return fromPoints(std::move(pts));
}

std::vector<unsigned>
BatchLatencyModel::denseAnchors(unsigned max_batch)
{
    simAssert(max_batch >= 1, "need at least batch 1");
    std::vector<unsigned> out;
    unsigned step = 1;
    for (unsigned b = 1; b < max_batch; b += step) {
        out.push_back(b);
        if (b >= 8 && (b & (b - 1)) == 0)
            step = b / 4; // double the stride at each octave
    }
    out.push_back(max_batch);
    return out;
}

double
BatchLatencyModel::latencySeconds(unsigned batch) const
{
    simAssert(!points_.empty(), "latency model is empty");
    const unsigned b = std::max(batch, 1u);
    if (b <= points_.front().first)
        return points_.front().second;
    if (b >= points_.back().first)
        return points_.back().second;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (b > points_[i].first)
            continue;
        const auto &[b0, t0] = points_[i - 1];
        const auto &[b1, t1] = points_[i];
        const double f = double(b - b0) / double(b1 - b0);
        return t0 + f * (t1 - t0);
    }
    return points_.back().second; // unreachable
}

unsigned
BatchLatencyModel::maxBatch() const
{
    simAssert(!points_.empty(), "latency model is empty");
    return points_.back().first;
}

double
BatchLatencyModel::saturationRequestsPerSec(unsigned replicas) const
{
    const unsigned b = maxBatch();
    return double(replicas) * double(b) / latencySeconds(b);
}

std::string
BatchLatencyModel::fingerprint() const
{
    std::string s;
    s.reserve(16 + points_.size() * 32);
    s += "latency:";
    for (const auto &[b, t] : points_) {
        s += std::to_string(b);
        s += '=';
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(t));
        std::memcpy(&bits, &t, sizeof(bits));
        s += std::to_string(bits);
        s += ',';
    }
    return s;
}

} // namespace serving
} // namespace ascend
