/**
 * @file
 * Analytic model of the separated safety ring NoC used by the
 * automotive SoC (Section 3.3): CPU-domain traffic rides a private
 * bidirectional ring (ASIL-D isolation) so AI bulk traffic can never
 * interfere with it.
 */

#ifndef ASCEND_NOC_RING_HH
#define ASCEND_NOC_RING_HH

#include "common/types.hh"

namespace ascend {
namespace noc {

/** Bidirectional ring parameters. */
struct RingConfig
{
    unsigned nodes = 8;
    Bytes flitBytes = 64;
    double clockGhz = 1.0;
    double hopLatencyCycles = 2.0;
};

/** Closed-form latency/throughput model of a bidirectional ring. */
class RingModel
{
  public:
    explicit RingModel(RingConfig config) : config_(config) {}

    /** Average hop count with shortest-direction routing. */
    double
    avgHops() const
    {
        return config_.nodes / 4.0;
    }

    /** Unloaded latency of an average transfer, cycles. */
    double
    unloadedLatencyCycles() const
    {
        return avgHops() * config_.hopLatencyCycles;
    }

    /**
     * Saturation injection bandwidth per node: with bidirectional
     * links each of the 2N link directions carries flitBytes/cycle
     * and the average flit occupies avgHops() of them.
     */
    double
    saturationBytesPerSecPerNode() const
    {
        const double links = 2.0 * config_.nodes;
        const double per_cycle =
            links * config_.flitBytes / avgHops() / config_.nodes;
        return per_cycle * config_.clockGhz * 1e9;
    }

    /**
     * M/D/1-style loaded latency at utilization @p rho in [0, 1).
     */
    double
    loadedLatencyCycles(double rho) const
    {
        if (rho >= 1.0)
            return 1e18; // saturated
        return unloadedLatencyCycles() * (1.0 + rho / (2.0 * (1.0 - rho)));
    }

    const RingConfig &config() const { return config_; }

  private:
    RingConfig config_;
};

} // namespace noc
} // namespace ascend

#endif // ASCEND_NOC_RING_HH
