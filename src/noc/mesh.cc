/**
 * @file
 * Mesh NoC simulator implementation.
 *
 * Router model: each input port is a FIFO. In buffered mode heads
 * compete for output ports and losers wait (input-queued router with
 * priority + age arbitration). In bufferless mode every queue holds
 * at most one flit and must drain every cycle; losers are deflected
 * to any free port, which is what keeps the router area small on the
 * real chip.
 */

#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/tracer.hh"

namespace ascend {
namespace noc {

namespace {

enum Port : unsigned { North = 0, East, South, West };

unsigned
opposite(unsigned port)
{
    switch (port) {
      case North: return South;
      case East:  return West;
      case South: return North;
      case West:  return East;
    }
    panic("opposite: bad port");
}

/** In-flight flit with routing bookkeeping. */
struct LiveFlit
{
    Flit flit;
    std::uint16_t hops = 0;
};

constexpr unsigned kNoPort = 4;

} // anonymous namespace

bool
UniformTraffic::next(unsigned node, Rng &rng, unsigned &dst,
                     std::uint8_t &priority)
{
    if (!rng.chance(rate_))
        return false;
    dst = static_cast<unsigned>(rng.uniform(nodes_));
    if (dst == node)
        dst = (dst + 1) % nodes_;
    priority = 0;
    return true;
}

bool
HotspotTraffic::next(unsigned node, Rng &rng, unsigned &dst,
                     std::uint8_t &priority)
{
    if (!rng.chance(rate_))
        return false;
    dst = hotspots_[rng.uniform(hotspots_.size())];
    if (dst == node)
        return false;
    priority = 0;
    return true;
}

bool
NearestSliceTraffic::next(unsigned node, Rng &rng, unsigned &dst,
                          std::uint8_t &priority)
{
    if (!rng.chance(rate_))
        return false;
    const int r = int(node / cols_), c = int(node % cols_);
    unsigned best = slices_.front();
    int best_d = 1 << 30;
    for (unsigned sl : slices_) {
        const int sr = int(sl / cols_), sc = int(sl % cols_);
        const int d = std::abs(sr - r) + std::abs(sc - c);
        if (d > 0 && d < best_d) {
            best_d = d;
            best = sl;
        }
    }
    dst = best;
    priority = 0;
    return true;
}

bool
MixedPriorityTraffic::next(unsigned node, Rng &rng, unsigned &dst,
                           std::uint8_t &priority)
{
    const bool critical = node < criticalNodes_;
    const double rate = critical ? criticalRate_ : bulkRate_;
    if (!rng.chance(rate))
        return false;
    dst = static_cast<unsigned>(rng.uniform(nodes_));
    if (dst == node)
        dst = (dst + 1) % nodes_;
    priority = critical ? 1 : 0;
    return true;
}

MeshNoc::MeshNoc(MeshConfig config) : config_(config)
{
    simAssert(config_.rows > 0 && config_.cols > 0, "empty mesh");
    simAssert(config_.flitBytes > 0, "flit size must be positive");
}

MeshStats
MeshNoc::run(TrafficPattern &traffic, std::uint64_t cycles,
             std::uint64_t seed)
{
    const unsigned n = nodes();
    const unsigned cols = config_.cols;
    Rng rng(seed);

    // queues[node][port]: input FIFOs; arrivals land at the back
    // after the node scan so same-cycle forwarding cannot happen.
    std::vector<std::array<std::deque<LiveFlit>, 4>> queues(n);
    std::vector<std::deque<Flit>> inject(n);
    struct Arrival
    {
        unsigned node;
        unsigned port;
        LiveFlit flit;
    };
    std::vector<Arrival> arrivals;

    MeshStats stats;
    stats.cycles = cycles;
    double latency_sum = 0;
    double hop_sum = 0;
    latencySum_ = {};
    latencyCount_ = {};
    latencyHist_[0].reset();
    latencyHist_[1].reset();
    std::vector<std::uint64_t> link_use(n * 4, 0);

    auto route = [&](unsigned node, unsigned dst) -> unsigned {
        const unsigned r = node / cols, c = node % cols;
        const unsigned dr = dst / cols, dc = dst % cols;
        if (dc > c)
            return East;
        if (dc < c)
            return West;
        if (dr > r)
            return South;
        if (dr < r)
            return North;
        return kNoPort; // at destination
    };
    auto has_link = [&](unsigned node, unsigned port) {
        const unsigned r = node / cols, c = node % cols;
        switch (port) {
          case North: return r > 0;
          case South: return r + 1 < config_.rows;
          case West:  return c > 0;
          case East:  return c + 1 < cols;
        }
        return false;
    };
    auto neighbor = [&](unsigned node, unsigned port) -> unsigned {
        switch (port) {
          case North: return node - cols;
          case South: return node + cols;
          case West:  return node - 1;
          case East:  return node + 1;
        }
        panic("neighbor: bad port");
    };
    auto deliver = [&](const LiveFlit &lf, std::uint64_t now) {
        ++stats.delivered;
        const double lat = double(now - lf.flit.injectCycle);
        latency_sum += lat;
        hop_sum += lf.hops;
        const unsigned pri = std::min<unsigned>(lf.flit.priority, 1);
        latencySum_[pri] += lat;
        ++latencyCount_[pri];
        latencyHist_[pri].sample(lat);
    };

    obs::Tracer *const tracer = obs::Tracer::current();
    for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
        // Sampled fabric counters on the NoC cycle timeline.
        if (tracer && (cycle & 0xff) == 0) {
            tracer->counter(obs::Domain::Noc, "delivered flits", cycle,
                            double(stats.delivered));
            tracer->counter(obs::Domain::Noc, "injection stalls", cycle,
                            double(stats.injectionStalls));
        }
        // Offer new traffic.
        for (unsigned node = 0; node < n; ++node) {
            unsigned dst;
            std::uint8_t pri;
            if (traffic.next(node, rng, dst, pri)) {
                if (inject[node].size() < config_.injectQueueCap) {
                    Flit f;
                    f.dst = static_cast<std::uint16_t>(dst);
                    f.priority = pri;
                    f.injectCycle = static_cast<std::uint32_t>(cycle);
                    inject[node].push_back(f);
                    ++stats.injected;
                } else {
                    ++stats.injectionStalls;
                }
            }
        }

        arrivals.clear();
        for (unsigned node = 0; node < n; ++node) {
            // Eject arrived flits, then collect competing heads.
            std::vector<std::deque<LiveFlit> *> heads;
            for (auto &q : queues[node]) {
                while (!q.empty() && q.front().flit.dst == node) {
                    deliver(q.front(), cycle);
                    q.pop_front();
                }
                if (!q.empty())
                    heads.push_back(&q);
            }
            std::sort(heads.begin(), heads.end(),
                      [](const std::deque<LiveFlit> *a,
                         const std::deque<LiveFlit> *b) {
                          const Flit &fa = a->front().flit;
                          const Flit &fb = b->front().flit;
                          if (fa.priority != fb.priority)
                              return fa.priority > fb.priority;
                          return fa.injectCycle < fb.injectCycle;
                      });

            std::array<bool, 4> out_used{};
            auto send = [&](LiveFlit lf, unsigned port) {
                out_used[port] = true;
                ++lf.hops;
                arrivals.push_back(
                    Arrival{neighbor(node, port), opposite(port), lf});
                ++link_use[node * 4 + port];
            };

            for (auto *q : heads) {
                const unsigned pref = route(node, q->front().flit.dst);
                if (pref != kNoPort && !out_used[pref] &&
                    has_link(node, pref)) {
                    send(q->front(), pref);
                    q->pop_front();
                    continue;
                }
                if (config_.bufferless) {
                    bool sent = false;
                    for (unsigned p = 0; p < 4 && !sent; ++p) {
                        if (!out_used[p] && has_link(node, p)) {
                            send(q->front(), p);
                            q->pop_front();
                            sent = true;
                        }
                    }
                    if (!sent)
                        panic("deflection invariant violated at node %u",
                              node);
                }
                // Buffered: losers stay queued.
            }

            // Inject through a leftover free port (in bufferless mode
            // possibly a deflecting one, as the real router does).
            if (!inject[node].empty()) {
                const Flit &f = inject[node].front();
                const unsigned pref = route(node, f.dst);
                unsigned chosen = kNoPort;
                if (pref != kNoPort && !out_used[pref] &&
                    has_link(node, pref)) {
                    chosen = pref;
                } else if (config_.bufferless) {
                    for (unsigned p = 0; p < 4; ++p) {
                        if (!out_used[p] && has_link(node, p)) {
                            chosen = p;
                            break;
                        }
                    }
                }
                if (chosen != kNoPort) {
                    LiveFlit lf;
                    lf.flit = f;
                    send(lf, chosen);
                    inject[node].pop_front();
                }
            }
        }

        for (const Arrival &a : arrivals)
            queues[a.node][a.port].push_back(a.flit);
    }

    if (stats.delivered) {
        stats.avgLatencyCycles = latency_sum / double(stats.delivered);
        stats.avgHopCount = hop_sum / double(stats.delivered);
    }
    std::uint64_t max_use = 0;
    for (std::uint64_t u : link_use)
        max_use = std::max(max_use, u);
    stats.maxLinkUtilization = cycles ? double(max_use) / cycles : 0;
    if (tracer)
        tracer->span(obs::Domain::Noc, 1, "mesh-run", 0, cycles,
                     stats.delivered * config_.flitBytes);
    return stats;
}

double
MeshNoc::avgLatency(std::uint8_t priority) const
{
    const unsigned pri = std::min<unsigned>(priority, 1);
    return latencyCount_[pri]
        ? latencySum_[pri] / double(latencyCount_[pri]) : 0.0;
}

double
MeshNoc::latencyPercentile(std::uint8_t priority, double q) const
{
    return latencyHist_[std::min<unsigned>(priority, 1)].percentile(q);
}

} // namespace noc
} // namespace ascend
