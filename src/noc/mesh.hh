/**
 * @file
 * Flit-level 2D mesh network-on-chip simulator.
 *
 * Models the Ascend 910 compute-die interconnect (Section 3.1.1): a
 * 4 x 6 2D mesh whose links carry 1024 bits per cycle at 2 GHz
 * (256 GB/s per link), in a bufferless style to cut area. Two router
 * modes are provided:
 *
 *  - Buffered: classic input-queued XY dimension-order routing with
 *    round-robin (optionally priority-aware) output arbitration.
 *  - Bufferless: deflection routing — every flit that arrives at a
 *    router must leave on some output the same cycle; losers of the
 *    productive-port arbitration are deflected. This is the mode the
 *    paper says the real chip uses to save router area.
 *
 * Flits are routed independently (packet reassembly is accounted, not
 * enforced), which is the standard simplification for deflection
 * networks. QoS is a two-level priority: high-priority flits win
 * arbitration; the global scheduling policy the paper mentions is
 * modelled by per-node weighted injection.
 */

#ifndef ASCEND_NOC_MESH_HH
#define ASCEND_NOC_MESH_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ascend {
namespace noc {

/** Router/topology configuration. */
struct MeshConfig
{
    unsigned rows = 6;
    unsigned cols = 4;
    Bytes flitBytes = 128;   ///< 1024-bit links
    double clockGhz = 2.0;
    bool bufferless = true;  ///< deflection routing (the 910 design)
    unsigned injectQueueCap = 64; ///< per-node injection queue bound
};

/** One flit in flight. */
struct Flit
{
    std::uint16_t dst = 0;
    std::uint8_t priority = 0; ///< higher wins arbitration
    std::uint32_t injectCycle = 0;
};

/** Aggregate simulation results. */
struct MeshStats
{
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t injectionStalls = 0; ///< flits refused (queue full)
    double avgLatencyCycles = 0;
    double avgHopCount = 0;
    double maxLinkUtilization = 0;
    std::uint64_t cycles = 0;

    /** Delivered bytes per cycle across the whole fabric. */
    double
    throughputBytesPerCycle(Bytes flit_bytes) const
    {
        return cycles ? double(delivered) * flit_bytes / cycles : 0;
    }

    /** Aggregate delivered bandwidth in bytes/second. */
    double
    bandwidthBytesPerSec(const MeshConfig &cfg) const
    {
        return throughputBytesPerCycle(cfg.flitBytes) * cfg.clockGhz * 1e9;
    }
};

/**
 * A traffic source: asked once per node per cycle whether to inject
 * and where to. Return false for "no flit this cycle".
 */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /**
     * @param node Source node id.
     * @param rng Generator to use (deterministic per-sim).
     * @param[out] dst Destination node.
     * @param[out] priority QoS class.
     * @return true to inject one flit from @p node this cycle.
     */
    virtual bool next(unsigned node, Rng &rng, unsigned &dst,
                      std::uint8_t &priority) = 0;
};

/** Uniform-random traffic at a given injection rate (flits/node/cycle). */
class UniformTraffic : public TrafficPattern
{
  public:
    UniformTraffic(double rate, unsigned nodes)
        : rate_(rate), nodes_(nodes)
    {}
    bool next(unsigned node, Rng &rng, unsigned &dst,
              std::uint8_t &priority) override;

  private:
    double rate_;
    unsigned nodes_;
};

/**
 * Hotspot traffic: every node sends to one of a small set of hotspot
 * nodes (the LLC slices) with the given rate. Models the core-to-LLC
 * pattern of the training SoC.
 */
class HotspotTraffic : public TrafficPattern
{
  public:
    HotspotTraffic(double rate, std::vector<unsigned> hotspots)
        : rate_(rate), hotspots_(std::move(hotspots))
    {}
    bool next(unsigned node, Rng &rng, unsigned &dst,
              std::uint8_t &priority) override;

  private:
    double rate_;
    std::vector<unsigned> hotspots_;
};

/**
 * Floorplanned core-to-LLC traffic: each node sends to its *nearest*
 * LLC slice (the real chip co-locates slices with core clusters, so
 * most requests travel one or two hops). This is the pattern under
 * which the mesh reaches its published aggregate L2 bandwidth.
 */
class NearestSliceTraffic : public TrafficPattern
{
  public:
    NearestSliceTraffic(double rate, std::vector<unsigned> slices,
                        unsigned cols)
        : rate_(rate), slices_(std::move(slices)), cols_(cols)
    {}
    bool next(unsigned node, Rng &rng, unsigned &dst,
              std::uint8_t &priority) override;

  private:
    double rate_;
    std::vector<unsigned> slices_;
    unsigned cols_;
};

/**
 * Mixed-priority traffic: a fraction of nodes inject high-priority
 * latency-critical flits, the rest bulk flits (QoS experiment).
 */
class MixedPriorityTraffic : public TrafficPattern
{
  public:
    MixedPriorityTraffic(double bulk_rate, double critical_rate,
                         unsigned critical_nodes, unsigned nodes)
        : bulkRate_(bulk_rate), criticalRate_(critical_rate),
          criticalNodes_(critical_nodes), nodes_(nodes)
    {}
    bool next(unsigned node, Rng &rng, unsigned &dst,
              std::uint8_t &priority) override;

  private:
    double bulkRate_;
    double criticalRate_;
    unsigned criticalNodes_;
    unsigned nodes_;
};

/**
 * The mesh simulator.
 */
class MeshNoc
{
  public:
    explicit MeshNoc(MeshConfig config);

    /** Run @p cycles of simulation with @p traffic. */
    MeshStats run(TrafficPattern &traffic, std::uint64_t cycles,
                  std::uint64_t seed = 1);

    /** Average delivered latency per priority class from the last run. */
    double avgLatency(std::uint8_t priority) const;

    /** Latency percentile per priority class from the last run. */
    double latencyPercentile(std::uint8_t priority, double q) const;

    unsigned nodes() const { return config_.rows * config_.cols; }
    const MeshConfig &config() const { return config_; }

    /** Peak bandwidth of one link in bytes/second. */
    double
    linkBandwidthBytesPerSec() const
    {
        return double(config_.flitBytes) * config_.clockGhz * 1e9;
    }

  private:
    static constexpr unsigned kPorts = 5; // N, E, S, W, Local

    unsigned nodeOf(unsigned row, unsigned col) const
    {
        return row * config_.cols + col;
    }

    MeshConfig config_;
    // Per-priority latency accounting for the last run.
    std::array<double, 2> latencySum_{};
    std::array<std::uint64_t, 2> latencyCount_{};
    std::array<stats::Histogram, 2> latencyHist_{
        stats::Histogram(2048.0, 1024), stats::Histogram(2048.0, 1024)};
};

} // namespace noc
} // namespace ascend

#endif // ASCEND_NOC_MESH_HH
