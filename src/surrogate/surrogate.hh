/**
 * @file
 * Error-bounded surrogate cost model: O(1) layer-cycle prediction
 * with exact-simulation fallback.
 *
 * The cycle-level core sim is exact but serial per layer, so a
 * 10^5-point design-space sweep or a million-request serving sim is
 * gated on re-simulating near-identical layer shapes. This module
 * replaces most of those simulations with multilinear interpolation
 * in log-shape space between *canonical anchor shapes*: every work
 * axis of a query layer (batch, spatial dims, channels, GEMM dims,
 * element counts) is bracketed on a fixed geometric grid
 * (`gridStepsPerOctave` points per factor of two), and the exact
 * simulator is only consulted at the bracketing grid shapes. Anchor
 * results are memoized in the shared SimCache, so a dense sweep pays
 * one exact simulation per grid point instead of one per query —
 * and a warm ASCEND_CACHE_DIR cache *is* a pre-trained interpolation
 * table (self-calibration: every fallback enriches it).
 *
 * Error-budget contract: a prediction is only trusted when two
 * independent interpolation levels agree. The fine estimate brackets
 * each off-grid axis at one grid step, the coarse estimate at two;
 * Richardson-style, their disagreement bounds the local curvature
 * error. Queries whose disagreement exceeds a guard fraction of the
 * budget (`ASCEND_SURROGATE_ERR`, default 2%) fall back to the full
 * cycle-level simulation, as do shapes outside the trusted hull
 * (unsupported kinds, too many off-grid axes, axes quantized by the
 * hardware tile more coarsely than the budget, too little work for
 * smooth scaling). A deterministic 1-in-`spotCheckPeriod` sample of
 * accepted predictions is additionally re-derived exactly and the
 * observed relative error surfaced through ASCEND_SIM_STATS.
 *
 * Determinism contract: a prediction is a pure function of
 * (layer shape, core config, options) — anchor shapes are derived
 * from the query alone and anchor values come from the deterministic
 * exact simulator — so surrogate-backed results are byte-identical
 * at any ASCEND_THREADS and independent of cache warmth or query
 * order. State (the SimCache) only ever changes *speed*, never
 * values.
 */

#ifndef ASCEND_SURROGATE_SURROGATE_HH
#define ASCEND_SURROGATE_SURROGATE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/core_sim.hh"
#include "model/layer.hh"

namespace ascend {
namespace surrogate {

/** Knobs of the surrogate tier; all fingerprinted into cache keys. */
struct SurrogateOptions
{
    /** Master switch; off reproduces the exact path bit-for-bit. */
    bool enabled = false;

    /**
     * Relative cycle-error budget. Predictions whose two-level
     * interpolation disagreement exceeds a guard fraction of this
     * value fall back to the exact simulator.
     */
    double errBudget = 0.02;

    /**
     * Anchor-grid density: grid points per factor of two. Denser
     * grids shrink the bracket a query interpolates across —
     * worst-case error scales roughly with bracket width when the
     * cycle surface has tiling steps — at the cost of more anchor
     * simulations per octave of swept shape range.
     */
    unsigned gridStepsPerOctave = 4;

    /**
     * Deterministically spot-check one in this many accepted
     * predictions against the exact sim (0 disables spot checks).
     * Spot-checked queries return the exact result.
     */
    std::uint64_t spotCheckPeriod = 64;

    /** Axis values below this are structural, never interpolated. */
    std::uint64_t minQuantize = 4;

    /**
     * Layers with fewer FLOPs than this go to the exact simulator:
     * small programs are dominated by pipeline fill and dispatch
     * quanta, not smooth work scaling (and are cheap anyway).
     */
    double minPredictFlops = 1e7;

    /**
     * ASCEND_SURROGATE=1 enables; ASCEND_SURROGATE_ERR=<rel> both
     * sets the budget and enables; ASCEND_SURROGATE_SPOT=<n> tunes
     * the spot-check period. Anything else: defaults above.
     */
    static SurrogateOptions fromEnv();
};

/**
 * Exact fingerprint of the surrogate configuration (plus an
 * algorithm version), mixed into cache keys so predicted results can
 * never alias exact ones — across sessions or cache files.
 */
std::string fingerprint(const SurrogateOptions &options);

/** How one runLayer query was answered. */
enum class Outcome : std::uint8_t {
    Disabled,       ///< surrogate off: plain exact path
    CacheHit,       ///< memoized result (exact or predicted) re-served
    Predicted,      ///< O(1) interpolation between anchor simulations
    Anchor,         ///< query sits on the grid: exact sim, doubles as
                    ///< an interpolation-table anchor
    FallbackSmall,  ///< below minPredictFlops: exact
    FallbackHull,   ///< outside the trusted hull (unsupported kind,
                    ///< too many off-grid axes, or an axis quantized
                    ///< more coarsely than the budget): exact
    FallbackBudget, ///< interpolation levels disagree beyond the
                    ///< error budget: exact
    SpotCheck,      ///< sampled for calibration: exact, error recorded
};

const char *toString(Outcome outcome);

/** True when the outcome carries an exact (not predicted) result. */
bool isExactOutcome(Outcome outcome);

/**
 * The predictor. Stateless beyond its options: anchor values live in
 * the caller's SimCache (reached through the exact callback), which
 * is what makes predictions order- and thread-independent.
 */
class Surrogate
{
  public:
    /** Exact compile-and-simulate callback (memoized by the caller). */
    using ExactFn =
        std::function<core::SimResult(const model::Layer &)>;

    explicit Surrogate(const SurrogateOptions &options);

    /**
     * Answer one layer query: predict in O(1) from anchor
     * simulations, or fall back to @p exact per the hull and budget
     * rules above. @p out is filled either way.
     *
     * @param spot_err_out On a SpotCheck outcome receives the
     *        observed relative cycle error |pred - exact| / exact;
     *        left untouched otherwise.
     */
    Outcome run(const model::Layer &layer, const ExactFn &exact,
                core::SimResult &out,
                double *spot_err_out = nullptr) const;

    const SurrogateOptions &options() const { return options_; }

    /** True if the layer kind has a feature extraction. */
    static bool supported(const model::Layer &layer);

    /**
     * True when every work axis of @p layer sits on the anchor grid
     * (such a query is simulated exactly and memoized — it *is* an
     * interpolation-table entry).
     */
    bool onGrid(const model::Layer &layer) const;

    /** The grid shape value for exponent @p j: round(2^(j/G)). */
    std::uint64_t gridValue(long j) const;

    /** Largest exponent j with gridValue(j) <= @p w (w >= 1). */
    long gridFloor(std::uint64_t w) const;

  private:
    SurrogateOptions options_;
};

} // namespace surrogate
} // namespace ascend

#endif // ASCEND_SURROGATE_SURROGATE_HH
