/**
 * @file
 * Surrogate cost model implementation.
 */

#include "surrogate/surrogate.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ascend {
namespace surrogate {

namespace {

/** Most work axes any layer kind exposes. */
constexpr unsigned kMaxAxes = 5;

/**
 * Most off-grid axes a prediction may interpolate over: 2^q corner
 * anchors per level, so q caps the exact-sim bill of a cold query.
 */
constexpr unsigned kMaxOffGrid = 3;

/**
 * Fraction of the error budget the fine/coarse interpolation levels
 * may disagree by before a query falls back to the exact simulator.
 * Richardson's argument says the fine error is roughly a third of the
 * disagreement when the cost surface is smooth; the margin below 1/2
 * absorbs the places where it is not (tiling staircases make cycle
 * curves piecewise, and both levels can miss the same step edge).
 */
constexpr double kBudgetGuard = 0.35;

/**
 * Work quantum of a cube-tiled axis: the default core's 16x16x16
 * fractal rounds every GEMM / channel dimension up to multiples of
 * 16, so the cycle curve along such an axis is a staircase with
 * steps of relative height ~16/w.
 */
constexpr std::uint64_t kCubeTileQuantum = 16;

/**
 * Work quantum of a vector-processed element axis: the default
 * 256-byte datapath covers 128 fp16 lanes per cycle, so element
 * counts quantize in blocks of 128.
 */
constexpr std::uint64_t kVectorLaneQuantum = 128;

/**
 * The work axes of one layer, in a fixed per-kind order. Everything
 * not in the vector (kernel/stride/pad geometry, dtype, activation
 * kind, fused passes) is structural: anchors copy it verbatim.
 * quantum[a] is the hardware rounding granule of axis a — the trust
 * hull refuses to interpolate an off-grid axis whose staircase step
 * (quantum / value) exceeds the error budget, because no smooth
 * interpolant can beat that quantization floor.
 */
struct Features
{
    unsigned n = 0;
    std::array<std::uint64_t, kMaxAxes> v{};
    std::array<std::uint64_t, kMaxAxes> quantum{1, 1, 1, 1, 1};
};

/**
 * Extract the work axes of @p layer. False means the shape has no
 * sound axis decomposition (unsupported coupling between fields) and
 * must use the exact simulator.
 */
bool
extract(const model::Layer &layer, Features &f)
{
    // Byte-volume overrides are absolute, not per-axis: scaling a
    // shape axis would leave them behind and skew the memory charge.
    if (layer.inputBytesOverride || layer.outputBytesOverride)
        return false;
    switch (layer.kind) {
      case model::LayerKind::Conv2d:
        f.n = 5;
        f.v = {layer.batch, layer.inH, layer.inW, layer.inC,
               layer.outC};
        f.quantum = {1, 1, 1, kCubeTileQuantum, kCubeTileQuantum};
        return true;
      case model::LayerKind::DepthwiseConv2d:
        // The factory keeps inC == outC (one channel axis); anything
        // else is not a shape this family models.
        if (layer.inC != layer.outC)
            return false;
        f.n = 4;
        f.v = {layer.batch, layer.inH, layer.inW, layer.inC};
        f.quantum = {1, 1, 1, kCubeTileQuantum};
        return true;
      case model::LayerKind::Linear:
        f.n = 3;
        f.v = {layer.gemmM, layer.gemmK, layer.gemmN};
        f.quantum = {kCubeTileQuantum, kCubeTileQuantum,
                     kCubeTileQuantum};
        return true;
      case model::LayerKind::BatchedMatmul:
        f.n = 4;
        f.v = {layer.matmulCount, layer.gemmM, layer.gemmK,
               layer.gemmN};
        f.quantum = {1, kCubeTileQuantum, kCubeTileQuantum,
                     kCubeTileQuantum};
        return true;
      case model::LayerKind::Pool2d:
        if (layer.inC != layer.outC)
            return false;
        f.n = 4;
        f.v = {layer.batch, layer.inC, layer.inH, layer.inW};
        f.quantum = {1, kCubeTileQuantum, 1, 1};
        return true;
      case model::LayerKind::BatchNorm:
      case model::LayerKind::Activation:
      case model::LayerKind::Elementwise:
      case model::LayerKind::CvOp:
        f.n = 1;
        f.v = {layer.elems};
        f.quantum = {kVectorLaneQuantum};
        return true;
      case model::LayerKind::LayerNorm:
      case model::LayerKind::Softmax:
        // Axes are (rows, rowLen); elems is their product and is
        // recomputed on materialization.
        if (!layer.rowLen || layer.elems % layer.rowLen)
            return false;
        f.n = 2;
        f.v = {layer.elems / layer.rowLen, layer.rowLen};
        f.quantum = {1, kVectorLaneQuantum};
        return true;
    }
    return false;
}

/** Build the anchor layer with axis values @p f on the query's frame. */
model::Layer
materialize(const model::Layer &proto, const Features &f)
{
    model::Layer l = proto;
    switch (l.kind) {
      case model::LayerKind::Conv2d:
        l.batch = unsigned(f.v[0]);
        l.inH = unsigned(f.v[1]);
        l.inW = unsigned(f.v[2]);
        l.inC = unsigned(f.v[3]);
        l.outC = unsigned(f.v[4]);
        break;
      case model::LayerKind::DepthwiseConv2d:
        l.batch = unsigned(f.v[0]);
        l.inH = unsigned(f.v[1]);
        l.inW = unsigned(f.v[2]);
        l.inC = l.outC = unsigned(f.v[3]);
        break;
      case model::LayerKind::Linear:
        l.gemmM = f.v[0];
        l.gemmK = f.v[1];
        l.gemmN = f.v[2];
        break;
      case model::LayerKind::BatchedMatmul:
        l.matmulCount = f.v[0];
        l.gemmM = f.v[1];
        l.gemmK = f.v[2];
        l.gemmN = f.v[3];
        break;
      case model::LayerKind::Pool2d:
        l.batch = unsigned(f.v[0]);
        l.inC = l.outC = unsigned(f.v[1]);
        l.inH = unsigned(f.v[2]);
        l.inW = unsigned(f.v[3]);
        break;
      case model::LayerKind::BatchNorm:
      case model::LayerKind::Activation:
      case model::LayerKind::Elementwise:
      case model::LayerKind::CvOp:
        l.elems = f.v[0];
        break;
      case model::LayerKind::LayerNorm:
      case model::LayerKind::Softmax:
        l.rowLen = f.v[1];
        l.elems = f.v[0] * f.v[1];
        break;
    }
    return l;
}

/** One off-grid axis with its bracketing anchors. */
struct Bracket
{
    unsigned axis = 0;
    std::uint64_t lo = 0, hi = 0;
    double t = 0; ///< log-space position of the query in [lo, hi]
};

/**
 * FNV-1a over a canonical shape serialization: the deterministic
 * spot-check sampler (hash, not a counter, so the sampled subset is
 * independent of query order and thread count).
 */
std::uint64_t
shapeHash(const model::Layer &l)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    auto mixDouble = [&mix](double d) {
        std::uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        mix(bits);
    };
    mix(std::uint64_t(l.kind));
    mix(std::uint64_t(l.dtype));
    mix(l.batch);
    mix(l.inC);
    mix(l.outC);
    mix(l.inH);
    mix(l.inW);
    mix(l.kernelH);
    mix(l.kernelW);
    mix(l.strideH);
    mix(l.strideW);
    mix(l.padH);
    mix(l.padW);
    mix(l.gemmM);
    mix(l.gemmK);
    mix(l.gemmN);
    mix(l.matmulCount);
    mix(l.elems);
    mix(l.rowLen);
    mixDouble(l.cvPasses);
    mixDouble(l.fusedEvictPasses);
    mix(std::uint64_t(l.act));
    return h;
}

/**
 * Blend one SimResult field across the corner anchors. Cycle-ish
 * quantities scale as monomials of the shape axes, which are exactly
 * linear in log space, so the blend is geometric when every corner is
 * positive; zero-valued corners (a pipe the program never touches)
 * degrade to the arithmetic mean, which preserves exact zeros.
 */
template <typename Get>
std::uint64_t
blend(const core::SimResult *vals, const double *w, unsigned n,
      Get get)
{
    bool geometric = true;
    for (unsigned i = 0; i < n; ++i)
        if (get(vals[i]) == 0)
            geometric = false;
    double acc = 0;
    for (unsigned i = 0; i < n; ++i)
        acc += w[i] * (geometric ? std::log(double(get(vals[i])))
                                 : double(get(vals[i])));
    const double out = geometric ? std::exp(acc) : acc;
    return std::uint64_t(std::llround(std::max(out, 0.0)));
}

/**
 * Multilinear log-space interpolation between the 2^q corner anchors
 * spanned by @p br. Corner layers run through @p exact, which the
 * session memoizes — dense sweeps re-simulate each grid shape once.
 */
core::SimResult
interpolate(const model::Layer &proto, const Features &f,
            const Bracket *br, unsigned q,
            const Surrogate::ExactFn &exact)
{
    const unsigned corners = 1u << q;
    std::array<core::SimResult, 1u << kMaxOffGrid> vals;
    std::array<double, 1u << kMaxOffGrid> w;
    for (unsigned mask = 0; mask < corners; ++mask) {
        Features cf = f;
        double weight = 1.0;
        for (unsigned i = 0; i < q; ++i) {
            const bool hi = (mask >> i) & 1u;
            cf.v[br[i].axis] = hi ? br[i].hi : br[i].lo;
            weight *= hi ? br[i].t : 1.0 - br[i].t;
        }
        w[mask] = weight;
        vals[mask] = exact(materialize(proto, cf));
    }

    core::SimResult out;
    auto field = [&](auto get) {
        return blend(vals.data(), w.data(), corners, get);
    };
    out.totalCycles =
        field([](const core::SimResult &r) { return r.totalCycles; });
    out.totalFlops =
        field([](const core::SimResult &r) { return r.totalFlops; });
    out.instrsExecuted = field(
        [](const core::SimResult &r) { return r.instrsExecuted; });
    out.barriers =
        field([](const core::SimResult &r) { return r.barriers; });
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        out.pipes[p].busyCycles = field([p](const core::SimResult &r) {
            return r.pipes[p].busyCycles;
        });
        out.pipes[p].finishCycle =
            field([p](const core::SimResult &r) {
                return r.pipes[p].finishCycle;
            });
        out.pipes[p].waitCycles = field([p](const core::SimResult &r) {
            return r.pipes[p].waitCycles;
        });
        out.pipes[p].instrs = field(
            [p](const core::SimResult &r) { return r.pipes[p].instrs; });
    }
    for (std::size_t b = 0; b < isa::kNumBuses; ++b)
        out.busBytes[b] = field(
            [b](const core::SimResult &r) { return r.busBytes[b]; });
    return out;
}

/** Append an integer field (same idiom as the SimCache fingerprints). */
void
put(std::string &s, std::uint64_t v)
{
    s += std::to_string(v);
    s += ',';
}

void
putDouble(std::string &s, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put(s, bits);
}

} // anonymous namespace

SurrogateOptions
SurrogateOptions::fromEnv()
{
    SurrogateOptions o;
    if (const char *v = std::getenv("ASCEND_SURROGATE"))
        if (*v && std::strcmp(v, "0") != 0)
            o.enabled = true;
    if (const char *v = std::getenv("ASCEND_SURROGATE_ERR")) {
        char *end = nullptr;
        const double e = std::strtod(v, &end);
        if (end != v && e > 0) {
            o.errBudget = e;
            o.enabled = true;
        }
    }
    if (const char *v = std::getenv("ASCEND_SURROGATE_SPOT")) {
        char *end = nullptr;
        const unsigned long long p = std::strtoull(v, &end, 10);
        if (end != v)
            o.spotCheckPeriod = p;
    }
    return o;
}

std::string
fingerprint(const SurrogateOptions &options)
{
    // "sur1" is the algorithm version: bump it when the prediction
    // function changes, so persisted predictions from older code are
    // never served under new keys.
    std::string s;
    s.reserve(96);
    s += "sur1:";
    put(s, options.enabled);
    putDouble(s, options.errBudget);
    put(s, options.gridStepsPerOctave);
    put(s, options.spotCheckPeriod);
    put(s, options.minQuantize);
    putDouble(s, options.minPredictFlops);
    return s;
}

const char *
toString(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Disabled:       return "disabled";
      case Outcome::CacheHit:       return "cache-hit";
      case Outcome::Predicted:      return "predicted";
      case Outcome::Anchor:         return "anchor";
      case Outcome::FallbackSmall:  return "fallback-small";
      case Outcome::FallbackHull:   return "fallback-hull";
      case Outcome::FallbackBudget: return "fallback-budget";
      case Outcome::SpotCheck:      return "spot-check";
    }
    return "?";
}

bool
isExactOutcome(Outcome outcome)
{
    return outcome != Outcome::Predicted && outcome != Outcome::CacheHit;
}

Surrogate::Surrogate(const SurrogateOptions &options)
    : options_(options)
{
}

std::uint64_t
Surrogate::gridValue(long j) const
{
    const double g = double(options_.gridStepsPerOctave);
    return std::uint64_t(std::llround(std::exp2(double(j) / g)));
}

long
Surrogate::gridFloor(std::uint64_t w) const
{
    const double g = double(options_.gridStepsPerOctave);
    long j = long(std::floor(std::log2(double(w)) * g));
    // Seeded from floating-point logs; settle exactly with the
    // integral grid itself.
    while (gridValue(j) > w)
        --j;
    while (gridValue(j + 1) <= w)
        ++j;
    return j;
}

bool
Surrogate::supported(const model::Layer &layer)
{
    Features f;
    return extract(layer, f);
}

bool
Surrogate::onGrid(const model::Layer &layer) const
{
    Features f;
    if (!extract(layer, f))
        return false;
    for (unsigned a = 0; a < f.n; ++a) {
        const std::uint64_t w = f.v[a];
        if (w >= options_.minQuantize && gridValue(gridFloor(w)) != w)
            return false;
    }
    return true;
}

Outcome
Surrogate::run(const model::Layer &layer, const ExactFn &exact,
               core::SimResult &out, double *spot_err_out) const
{
    if (!options_.enabled) {
        out = exact(layer);
        return Outcome::Disabled;
    }
    Features f;
    if (!extract(layer, f)) {
        out = exact(layer);
        return Outcome::FallbackHull;
    }
    if (double(layer.flops()) < options_.minPredictFlops) {
        out = exact(layer);
        return Outcome::FallbackSmall;
    }

    // Bracket every off-grid work axis on the anchor grid, spanning
    // @p step grid exponents (1 = fine, 2 = coarse).
    auto bracket = [this](unsigned axis, long jlo, long step,
                          std::uint64_t w) {
        Bracket b;
        b.axis = axis;
        b.lo = gridValue(jlo);
        long jhi = jlo + step;
        b.hi = gridValue(jhi);
        while (b.hi <= b.lo) // dense grids can repeat small values
            b.hi = gridValue(++jhi);
        b.t = (std::log(double(w)) - std::log(double(b.lo))) /
              (std::log(double(b.hi)) - std::log(double(b.lo)));
        return b;
    };

    Bracket fine[kMaxOffGrid];
    Bracket coarse[kMaxOffGrid];
    unsigned q = 0;
    for (unsigned a = 0; a < f.n; ++a) {
        const std::uint64_t w = f.v[a];
        if (w < options_.minQuantize)
            continue; // structural: anchors keep it verbatim
        const long jlo = gridFloor(w);
        if (gridValue(jlo) == w)
            continue; // the query sits on this grid line
        // Quantization floor: the hardware rounds this axis up in
        // granules of quantum, so the true cycle curve is a
        // staircase with steps of relative height ~quantum/w. Once
        // that exceeds the budget no interpolant between anchors can
        // be trusted — and the two-level disagreement check cannot
        // see it, because both levels smooth over the same steps.
        if (double(f.quantum[a]) > options_.errBudget * double(w)) {
            out = exact(layer);
            return Outcome::FallbackHull;
        }
        if (q == kMaxOffGrid) {
            out = exact(layer);
            return Outcome::FallbackHull;
        }
        fine[q] = bracket(a, jlo, 1, w);
        // Two-step bracket from the nearest even exponent below: a
        // second interpolation level over a wider span whose
        // disagreement with the fine one bounds the local curvature
        // error (Richardson style). The span must genuinely differ
        // from the fine bracket — a one-step coarse level would
        // coincide with it whenever jlo is even and wave every
        // query through — and its endpoints stay on the same grid,
        // so dense sweeps share them.
        coarse[q] = bracket(a, (jlo / 2) * 2, 2, w);
        ++q;
    }
    if (q == 0) {
        // On-grid queries are the table: exact, memoized, and later
        // interpolated between.
        out = exact(layer);
        return Outcome::Anchor;
    }

    const core::SimResult finePred =
        interpolate(layer, f, fine, q, exact);
    const core::SimResult coarsePred =
        interpolate(layer, f, coarse, q, exact);
    const double fc = double(finePred.totalCycles);
    const double cc = double(coarsePred.totalCycles);
    const double disagree =
        std::abs(fc - cc) / std::max(fc, 1.0);
    if (disagree > kBudgetGuard * options_.errBudget) {
        out = exact(layer);
        return Outcome::FallbackBudget;
    }

    if (options_.spotCheckPeriod &&
        shapeHash(layer) % options_.spotCheckPeriod == 0) {
        out = exact(layer);
        if (spot_err_out) {
            const double ec = double(out.totalCycles);
            *spot_err_out =
                ec > 0 ? std::abs(fc - ec) / ec : 0.0;
        }
        return Outcome::SpotCheck;
    }

    out = finePred;
    return Outcome::Predicted;
}

} // namespace surrogate
} // namespace ascend
