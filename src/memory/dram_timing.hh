/**
 * @file
 * Bank-aware DRAM timing model.
 *
 * The flat bandwidth/latency model (dram.hh) is enough for SoC-level
 * rooflines, but the automotive latency experiments (Section 3.3)
 * care about *access* latency under contention, which depends on row
 * hits and bank-level parallelism. This model tracks, per bank, the
 * open row and the earliest next-activate time, and serves a request
 * stream with classic tRCD / CAS / tRP / tRC constraints.
 */

#ifndef ASCEND_MEMORY_DRAM_TIMING_HH
#define ASCEND_MEMORY_DRAM_TIMING_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ascend {
namespace memory {

/** Timing parameters in nanoseconds (device-clock agnostic). */
struct DramTimingConfig
{
    unsigned banks = 16;
    Bytes rowBytes = 2 * kKiB;
    double tRcdNs = 14.0;  ///< activate -> column command
    double tCasNs = 14.0;  ///< column command -> data
    double tRpNs = 14.0;   ///< precharge
    double tRcNs = 46.0;   ///< activate -> activate, same bank
    double busNsPerByte = 0.016; ///< ~64 GB/s data bus
};

/** Outcome of one access. */
struct DramAccessResult
{
    double completeNs = 0;
    double latencyNs = 0;
    bool rowHit = false;
};

/**
 * The bank-state model. Requests are served in arrival order (a
 * simple in-order controller; good enough for latency contrast
 * experiments between streaming and random traffic).
 */
class DramTiming
{
  public:
    explicit DramTiming(DramTimingConfig config = {});

    /**
     * Issue a @p bytes read at @p addr arriving at @p now_ns.
     * @return completion time and latency.
     */
    DramAccessResult access(std::uint64_t addr, Bytes bytes,
                            double now_ns);

    double rowHitRate() const;
    std::uint64_t accesses() const { return accesses_; }
    double avgLatencyNs() const;
    void reset();

    const DramTimingConfig &config() const { return config_; }

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        double readyNs = 0;      ///< earliest next column command
        double lastActivateNs = -1e18;
    };

    DramTimingConfig config_;
    std::vector<Bank> banks_;
    double busFreeNs_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t rowHits_ = 0;
    double latencySumNs_ = 0;
};

} // namespace memory
} // namespace ascend

#endif // ASCEND_MEMORY_DRAM_TIMING_HH
