/**
 * @file
 * Bandwidth/latency model of an external memory device (HBM stack,
 * LPDDR channel, or DDR). First-order: a transfer of B bytes costs
 * latency + B / bandwidth, and the model tracks cumulative busy time
 * so callers can reason about sustained utilization.
 */

#ifndef ASCEND_MEMORY_DRAM_HH
#define ASCEND_MEMORY_DRAM_HH

#include <string>

#include "common/types.hh"

namespace ascend {
namespace memory {

/**
 * ECC error-rate knob. Rates are expressed per GiB transferred so
 * they scale with traffic, not wall time. All rates default to zero,
 * and a zero-rate model is bit-for-bit identical to one without ECC
 * accounting.
 */
struct EccConfig
{
    double correctablePerGiB = 0;   ///< expected SEC-DED corrections
    double correctableStallSec = 0; ///< scrub/stall cost per correction
    double uncorrectablePerGiB = 0; ///< expected fatal (DUE) events
};

/** Static description of a memory device. */
struct DramConfig
{
    std::string name = "hbm";
    double bandwidthBytesPerSec = 1.2e12; ///< Ascend 910: 1.2 TB/s HBM
    double latencySec = 120e-9;           ///< first-word latency
    EccConfig ecc;
};

/** Accumulating service-time model. */
class DramModel
{
  public:
    explicit DramModel(DramConfig config) : config_(std::move(config)) {}

    /** Service time in seconds for a @p bytes transfer. */
    double
    serviceTime(Bytes bytes) const
    {
        return config_.latencySec +
               static_cast<double>(bytes) / config_.bandwidthBytesPerSec;
    }

    /** Time to stream @p bytes at full bandwidth (no latency term). */
    double
    streamTime(Bytes bytes) const
    {
        return static_cast<double>(bytes) / config_.bandwidthBytesPerSec;
    }

    /** Expected correctable-error count while moving @p bytes. */
    double
    expectedCorrectable(Bytes bytes) const
    {
        return config_.ecc.correctablePerGiB *
               (static_cast<double>(bytes) / double(kGiB));
    }

    /** Expected uncorrectable-error count while moving @p bytes. */
    double
    expectedUncorrectable(Bytes bytes) const
    {
        return config_.ecc.uncorrectablePerGiB *
               (static_cast<double>(bytes) / double(kGiB));
    }

    /** Expected stall seconds from ECC corrections on @p bytes. */
    double
    eccStallTime(Bytes bytes) const
    {
        if (config_.ecc.correctablePerGiB <= 0)
            return 0.0;
        return expectedCorrectable(bytes) *
               config_.ecc.correctableStallSec;
    }

    /**
     * Service time including the expected ECC correction stall.
     * Bitwise equal to serviceTime() when the correctable rate is
     * zero (the stall term is never added, not added-as-zero).
     */
    double
    serviceTimeWithEcc(Bytes bytes) const
    {
        const double base = serviceTime(bytes);
        if (config_.ecc.correctablePerGiB <= 0)
            return base;
        return base + eccStallTime(bytes);
    }

    /**
     * Uncorrectable events per second while streaming at full
     * bandwidth; feeds checkpoint/restart models
     * (resilience::timeWithCheckpointRestart).
     */
    double
    uncorrectablePerSecAtFullBandwidth() const
    {
        return config_.ecc.uncorrectablePerGiB *
               (config_.bandwidthBytesPerSec / double(kGiB));
    }

    /** Record an access (for utilization statistics). */
    void
    recordAccess(Bytes bytes)
    {
        totalBytes_ += bytes;
        busyTime_ += serviceTime(bytes);
    }

    Bytes totalBytes() const { return totalBytes_; }
    double busyTime() const { return busyTime_; }
    const DramConfig &config() const { return config_; }

    void
    reset()
    {
        totalBytes_ = 0;
        busyTime_ = 0;
    }

  private:
    DramConfig config_;
    Bytes totalBytes_ = 0;
    double busyTime_ = 0;
};

/** Published memory devices used by the SoC models. */
DramConfig hbm2Ascend910();   ///< 4 stacks, 1.2 TB/s total
DramConfig lpddr4xMobile();   ///< Kirin-class LPDDR4X, 34 GB/s
DramConfig ddrAutomotive();   ///< Ascend 610 class, 64 GB/s
DramConfig ddrIot();          ///< Ascend-Tiny class, 8 GB/s

} // namespace memory
} // namespace ascend

#endif // ASCEND_MEMORY_DRAM_HH
