/**
 * @file
 * Bandwidth/latency model of an external memory device (HBM stack,
 * LPDDR channel, or DDR). First-order: a transfer of B bytes costs
 * latency + B / bandwidth, and the model tracks cumulative busy time
 * so callers can reason about sustained utilization.
 */

#ifndef ASCEND_MEMORY_DRAM_HH
#define ASCEND_MEMORY_DRAM_HH

#include <string>

#include "common/types.hh"

namespace ascend {
namespace memory {

/** Static description of a memory device. */
struct DramConfig
{
    std::string name = "hbm";
    double bandwidthBytesPerSec = 1.2e12; ///< Ascend 910: 1.2 TB/s HBM
    double latencySec = 120e-9;           ///< first-word latency
};

/** Accumulating service-time model. */
class DramModel
{
  public:
    explicit DramModel(DramConfig config) : config_(std::move(config)) {}

    /** Service time in seconds for a @p bytes transfer. */
    double
    serviceTime(Bytes bytes) const
    {
        return config_.latencySec +
               static_cast<double>(bytes) / config_.bandwidthBytesPerSec;
    }

    /** Time to stream @p bytes at full bandwidth (no latency term). */
    double
    streamTime(Bytes bytes) const
    {
        return static_cast<double>(bytes) / config_.bandwidthBytesPerSec;
    }

    /** Record an access (for utilization statistics). */
    void
    recordAccess(Bytes bytes)
    {
        totalBytes_ += bytes;
        busyTime_ += serviceTime(bytes);
    }

    Bytes totalBytes() const { return totalBytes_; }
    double busyTime() const { return busyTime_; }
    const DramConfig &config() const { return config_; }

    void
    reset()
    {
        totalBytes_ = 0;
        busyTime_ = 0;
    }

  private:
    DramConfig config_;
    Bytes totalBytes_ = 0;
    double busyTime_ = 0;
};

/** Published memory devices used by the SoC models. */
DramConfig hbm2Ascend910();   ///< 4 stacks, 1.2 TB/s total
DramConfig lpddr4xMobile();   ///< Kirin-class LPDDR4X, 34 GB/s
DramConfig ddrAutomotive();   ///< Ascend 610 class, 64 GB/s
DramConfig ddrIot();          ///< Ascend-Tiny class, 8 GB/s

} // namespace memory
} // namespace ascend

#endif // ASCEND_MEMORY_DRAM_HH
