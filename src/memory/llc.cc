/**
 * @file
 * LLC model implementation.
 */

#include "memory/llc.hh"

#include "common/logging.hh"
#include "memory/dram.hh"
#include "obs/tracer.hh"

namespace ascend {
namespace memory {

DramConfig
hbm2Ascend910()
{
    return DramConfig{"hbm2", 1.2e12, 120e-9, {}};
}

DramConfig
lpddr4xMobile()
{
    return DramConfig{"lpddr4x", 34e9, 100e-9, {}};
}

DramConfig
ddrAutomotive()
{
    return DramConfig{"lpddr5-auto", 64e9, 110e-9, {}};
}

DramConfig
ddrIot()
{
    return DramConfig{"ddr-iot", 8e9, 90e-9, {}};
}

Llc::Llc(LlcConfig config) : config_(config)
{
    simAssert(config_.ways > 0, "llc needs at least one way");
    simAssert(config_.lineBytes > 0, "llc line size must be positive");
    sets_ = config_.capacity / (config_.ways * config_.lineBytes);
    simAssert(sets_ > 0, "llc capacity too small for geometry");
    lines_.assign(sets_ * config_.ways, Line{});
    partWays_.assign(std::max(1u, config_.partitions),
                     WayRange{0, config_.ways});
    stats_.assign(partWays_.size(), LlcPartStats{});
}

void
Llc::setPartitionWays(unsigned part, unsigned ways)
{
    setPartitionRange(part, 0, ways == 0 ? config_.ways : ways);
}

void
Llc::setPartitionRange(unsigned part, unsigned first, unsigned count)
{
    if (part >= partWays_.size())
        fatal("llc: partition %u out of range (%zu configured)", part,
              partWays_.size());
    if (first + count > config_.ways || count == 0)
        fatal("llc: bad way range [%u, %u) with %u ways", first,
              first + count, config_.ways);
    partWays_[part] = WayRange{first, count};
}

bool
Llc::access(std::uint64_t addr, unsigned part)
{
    if (part >= partWays_.size())
        fatal("llc: partition %u out of range", part);
    ++tick_;
    const std::uint64_t line_addr = addr / config_.lineBytes;
    const std::uint64_t set = line_addr % sets_;
    const std::uint64_t tag = line_addr / sets_;
    Line *base = &lines_[set * config_.ways];

    // Lookup searches all ways: MPAM restricts allocation, not hits.
    for (unsigned w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = tick_;
            ++stats_[part].hits;
            return true;
        }
    }

    // Miss: allocate the LRU way within the partition's range.
    const WayRange range = partWays_[part];
    unsigned victim = range.first;
    for (unsigned w = range.first; w < range.first + range.count; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    }
    base[victim] = Line{tag, tick_, true};
    ++stats_[part].misses;
    traceSample();
    return false;
}

void
Llc::traceSample() const
{
    // Sampled hit-rate counter on the access-tick timeline; the
    // stride keeps the trace compact and the disabled-path cost at
    // one relaxed load per miss.
    if ((tick_ & 0xfff) != 0)
        return;
    if (obs::Tracer *tracer = obs::Tracer::current()) {
        std::uint64_t hits = 0, accesses = 0;
        for (const LlcPartStats &s : stats_) {
            hits += s.hits;
            accesses += s.accesses();
        }
        tracer->counter(obs::Domain::Llc, "llc hit rate", tick_,
                        accesses ? double(hits) / double(accesses) : 0);
    }
}

const LlcPartStats &
Llc::partStats(unsigned part) const
{
    if (part >= stats_.size())
        fatal("llc: partition %u out of range", part);
    return stats_[part];
}

void
Llc::resetStats()
{
    for (LlcPartStats &s : stats_)
        s = LlcPartStats{};
}

} // namespace memory
} // namespace ascend
