/**
 * @file
 * Set-associative last-level cache model with MPAM-style way
 * partitioning.
 *
 * Used for two experiments: the Section 4.1 LLC-capacity study
 * (96 MB -> 720 MB 3D-SRAM) and the Section 3.3 automotive QoS study,
 * where Memory System Resource Partitioning and Monitoring (MPAM)
 * reserves ways for the latency-critical partition so bulk streaming
 * traffic cannot evict it.
 *
 * The model is a classic tag-only LRU cache simulated at line
 * granularity; no data is stored. Partitions restrict the ways a
 * request may allocate into (it may still *hit* in any way, which is
 * how MPAM behaves: partitioning controls allocation, not lookup).
 */

#ifndef ASCEND_MEMORY_LLC_HH
#define ASCEND_MEMORY_LLC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ascend {
namespace memory {

/** Static cache geometry. */
struct LlcConfig
{
    Bytes capacity = 96 * kMiB;
    unsigned ways = 16;
    Bytes lineBytes = 4 * kKiB; ///< coarse sectors keep traces short
    unsigned partitions = 1;
};

/** Per-partition access statistics. */
struct LlcPartStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double
    hitRate() const
    {
        return accesses() ? double(hits) / accesses() : 0.0;
    }
};

/**
 * The cache model.
 */
class Llc
{
  public:
    explicit Llc(LlcConfig config);

    /**
     * Look up @p addr on behalf of @p part.
     * @return true on hit. On miss the line is allocated into the
     * partition's allowed ways (LRU victim within those ways).
     */
    bool access(std::uint64_t addr, unsigned part = 0);

    /**
     * Restrict partition @p part to allocate into @p ways ways
     * (starting from way 0 upward; 0 means "all ways allowed").
     * Different partitions may overlap; the automotive configuration
     * gives the critical partition a private slice by assigning
     * disjoint ranges with setPartitionRange().
     */
    void setPartitionWays(unsigned part, unsigned ways);

    /** Restrict @p part to ways [first, first+count). */
    void setPartitionRange(unsigned part, unsigned first, unsigned count);

    const LlcPartStats &partStats(unsigned part) const;
    const LlcConfig &config() const { return config_; }
    std::uint64_t numSets() const { return sets_; }

    void resetStats();

  private:
    /** Sampled obs counter emission (misses only, strided). */
    void traceSample() const;

    struct Line
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };
    struct WayRange
    {
        unsigned first = 0;
        unsigned count = 0;
    };

    LlcConfig config_;
    std::uint64_t sets_;
    std::vector<Line> lines_; ///< sets_ * ways, row-major by set
    std::vector<WayRange> partWays_;
    std::vector<LlcPartStats> stats_;
    std::uint64_t tick_ = 0;
};

} // namespace memory
} // namespace ascend

#endif // ASCEND_MEMORY_LLC_HH
