/**
 * @file
 * Bank-aware DRAM timing implementation.
 */

#include "memory/dram_timing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ascend {
namespace memory {

DramTiming::DramTiming(DramTimingConfig config) : config_(config)
{
    simAssert(config_.banks > 0, "dram needs banks");
    simAssert(config_.rowBytes > 0, "row size must be positive");
    banks_.assign(config_.banks, Bank{});
}

DramAccessResult
DramTiming::access(std::uint64_t addr, Bytes bytes, double now_ns)
{
    const std::uint64_t row_addr = addr / config_.rowBytes;
    // Row-interleaved bank mapping: consecutive rows hit different
    // banks, which is what gives streaming its bank parallelism.
    const unsigned bank_idx =
        static_cast<unsigned>(row_addr % config_.banks);
    const std::uint64_t row = row_addr / config_.banks;
    Bank &bank = banks_[bank_idx];

    double column_ns = std::max(now_ns, bank.readyNs);
    bool hit = bank.openRow == row;
    if (!hit) {
        // Precharge (if a row is open) + activate, respecting tRC.
        double activate_ns = column_ns;
        if (bank.openRow != ~0ull)
            activate_ns += config_.tRpNs;
        activate_ns = std::max(activate_ns,
                               bank.lastActivateNs + config_.tRcNs);
        bank.lastActivateNs = activate_ns;
        bank.openRow = row;
        column_ns = activate_ns + config_.tRcdNs;
    }

    // Data transfer occupies the shared bus.
    const double data_start =
        std::max(column_ns + config_.tCasNs, busFreeNs_);
    const double complete =
        data_start + double(bytes) * config_.busNsPerByte;
    busFreeNs_ = complete;
    bank.readyNs = column_ns + config_.tCasNs;

    ++accesses_;
    if (hit)
        ++rowHits_;
    DramAccessResult r;
    r.completeNs = complete;
    r.latencyNs = complete - now_ns;
    r.rowHit = hit;
    latencySumNs_ += r.latencyNs;
    return r;
}

double
DramTiming::rowHitRate() const
{
    return accesses_ ? double(rowHits_) / double(accesses_) : 0.0;
}

double
DramTiming::avgLatencyNs() const
{
    return accesses_ ? latencySumNs_ / double(accesses_) : 0.0;
}

void
DramTiming::reset()
{
    banks_.assign(config_.banks, Bank{});
    busFreeNs_ = 0;
    accesses_ = 0;
    rowHits_ = 0;
    latencySumNs_ = 0;
}

} // namespace memory
} // namespace ascend
