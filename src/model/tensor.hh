/**
 * @file
 * Dense float tensor for the functional execution layer.
 *
 * Deliberately simple: row-major float storage with an NCHW-flavoured
 * shape. Good enough to validate datapath semantics (img2col, GEMM,
 * vector ops) against reference implementations; not a performance
 * container.
 */

#ifndef ASCEND_MODEL_TENSOR_HH
#define ASCEND_MODEL_TENSOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ascend {
namespace model {

/** Row-major dense tensor of floats. */
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(std::vector<std::size_t> shape)
        : shape_(std::move(shape))
    {
        std::size_t n = 1;
        for (std::size_t d : shape_) {
            simAssert(d > 0, "tensor dims must be positive");
            n *= d;
        }
        data_.assign(n, 0.0f);
    }

    static Tensor
    random(std::vector<std::size_t> shape, Rng &rng, float scale = 1.0f)
    {
        Tensor t(std::move(shape));
        for (float &v : t.data_)
            v = (float(rng.uniformReal()) * 2.0f - 1.0f) * scale;
        return t;
    }

    const std::vector<std::size_t> &shape() const { return shape_; }
    std::size_t numel() const { return data_.size(); }

    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 2D accessor for (rows x cols) matrices. */
    float &
    at2(std::size_t r, std::size_t c)
    {
        return data_[r * shape_.back() + c];
    }
    float
    at2(std::size_t r, std::size_t c) const
    {
        return data_[r * shape_.back() + c];
    }

    /** 4D NCHW accessor. */
    float &
    at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w)
    {
        simAssert(shape_.size() == 4, "at4 needs a 4D tensor");
        return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] +
                     w];
    }
    float
    at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const
    {
        return const_cast<Tensor *>(this)->at4(n, c, h, w);
    }

    std::vector<float> &data() { return data_; }
    const std::vector<float> &data() const { return data_; }

    /** Max absolute elementwise difference to @p other. */
    float maxAbsDiff(const Tensor &other) const;

  private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

} // namespace model
} // namespace ascend

#endif // ASCEND_MODEL_TENSOR_HH
