/**
 * @file
 * Layer factories and derived-metric implementations.
 */

#include "model/layer.hh"

#include "common/logging.hh"

namespace ascend {
namespace model {

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv2d:          return "conv2d";
      case LayerKind::DepthwiseConv2d: return "dwconv2d";
      case LayerKind::Linear:          return "linear";
      case LayerKind::BatchedMatmul:   return "bmm";
      case LayerKind::Pool2d:          return "pool2d";
      case LayerKind::BatchNorm:       return "batchnorm";
      case LayerKind::LayerNorm:       return "layernorm";
      case LayerKind::Activation:      return "activation";
      case LayerKind::Softmax:         return "softmax";
      case LayerKind::Elementwise:     return "elementwise";
      case LayerKind::CvOp:            return "cvop";
    }
    return "?";
}

Layer
Layer::conv2d(std::string name, unsigned batch, unsigned in_c,
              unsigned in_h, unsigned in_w, unsigned out_c,
              unsigned kernel, unsigned stride, unsigned pad, DataType dt)
{
    Layer l;
    l.kind = LayerKind::Conv2d;
    l.name = std::move(name);
    l.dtype = dt;
    l.batch = batch;
    l.inC = in_c;
    l.inH = in_h;
    l.inW = in_w;
    l.outC = out_c;
    l.kernelH = l.kernelW = kernel;
    l.strideH = l.strideW = stride;
    l.padH = l.padW = pad;
    return l;
}

Layer
Layer::depthwiseConv2d(std::string name, unsigned batch, unsigned channels,
                       unsigned in_h, unsigned in_w, unsigned kernel,
                       unsigned stride, unsigned pad, DataType dt)
{
    Layer l = conv2d(std::move(name), batch, channels, in_h, in_w,
                     channels, kernel, stride, pad, dt);
    l.kind = LayerKind::DepthwiseConv2d;
    return l;
}

Layer
Layer::linear(std::string name, std::uint64_t m, std::uint64_t k,
              std::uint64_t n, DataType dt)
{
    Layer l;
    l.kind = LayerKind::Linear;
    l.name = std::move(name);
    l.dtype = dt;
    l.gemmM = m;
    l.gemmK = k;
    l.gemmN = n;
    return l;
}

Layer
Layer::batchedMatmul(std::string name, std::uint64_t count, std::uint64_t m,
                     std::uint64_t k, std::uint64_t n, DataType dt)
{
    Layer l = linear(std::move(name), m, k, n, dt);
    l.kind = LayerKind::BatchedMatmul;
    l.matmulCount = count;
    return l;
}

Layer
Layer::pool2d(std::string name, unsigned batch, unsigned channels,
              unsigned in_h, unsigned in_w, unsigned kernel,
              unsigned stride, DataType dt)
{
    Layer l;
    l.kind = LayerKind::Pool2d;
    l.name = std::move(name);
    l.dtype = dt;
    l.batch = batch;
    l.inC = l.outC = channels;
    l.inH = in_h;
    l.inW = in_w;
    l.kernelH = l.kernelW = kernel;
    l.strideH = l.strideW = stride;
    return l;
}

Layer
Layer::batchNorm(std::string name, std::uint64_t elems, DataType dt)
{
    Layer l;
    l.kind = LayerKind::BatchNorm;
    l.name = std::move(name);
    l.dtype = dt;
    l.elems = elems;
    return l;
}

Layer
Layer::layerNorm(std::string name, std::uint64_t rows, std::uint64_t row_len,
                 DataType dt)
{
    Layer l;
    l.kind = LayerKind::LayerNorm;
    l.name = std::move(name);
    l.dtype = dt;
    l.elems = rows * row_len;
    l.rowLen = row_len;
    return l;
}

Layer
Layer::activation(std::string name, std::uint64_t elems, ActKind act,
                  DataType dt)
{
    Layer l;
    l.kind = LayerKind::Activation;
    l.name = std::move(name);
    l.dtype = dt;
    l.elems = elems;
    l.act = act;
    return l;
}

Layer
Layer::softmax(std::string name, std::uint64_t rows, std::uint64_t row_len,
               DataType dt)
{
    Layer l;
    l.kind = LayerKind::Softmax;
    l.name = std::move(name);
    l.dtype = dt;
    l.elems = rows * row_len;
    l.rowLen = row_len;
    return l;
}

Layer
Layer::elementwise(std::string name, std::uint64_t elems, DataType dt)
{
    Layer l;
    l.kind = LayerKind::Elementwise;
    l.name = std::move(name);
    l.dtype = dt;
    l.elems = elems;
    return l;
}

Layer
Layer::cvOp(std::string name, std::uint64_t elems, double passes,
            DataType dt)
{
    Layer l;
    l.kind = LayerKind::CvOp;
    l.name = std::move(name);
    l.dtype = dt;
    l.elems = elems;
    l.cvPasses = passes;
    return l;
}

unsigned
Layer::outH() const
{
    simAssert(strideH > 0, "stride must be positive");
    return (inH + 2 * padH - kernelH) / strideH + 1;
}

unsigned
Layer::outW() const
{
    simAssert(strideW > 0, "stride must be positive");
    return (inW + 2 * padW - kernelW) / strideW + 1;
}

bool
Layer::isCubeLayer() const
{
    switch (kind) {
      case LayerKind::Conv2d:
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        return true;
      default:
        return false;
    }
}

Flops
Layer::flops() const
{
    switch (kind) {
      case LayerKind::Conv2d:
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul: {
        std::uint64_t m, k, n;
        lowerToGemm(m, k, n);
        return 2 * m * k * n * matmulCount;
      }
      case LayerKind::DepthwiseConv2d:
        return 2ull * batch * outC * outH() * outW() * kernelH * kernelW;
      case LayerKind::Pool2d:
        return std::uint64_t(batch) * outC * outH() * outW() *
               kernelH * kernelW;
      case LayerKind::BatchNorm:
      case LayerKind::Activation:
      case LayerKind::Elementwise:
        return elems;
      case LayerKind::LayerNorm:
      case LayerKind::Softmax:
        return 4 * elems;
      case LayerKind::CvOp:
        return static_cast<Flops>(double(elems) * cvPasses);
    }
    return 0;
}

Bytes
Layer::inputBytes() const
{
    if (inputBytesOverride)
        return inputBytesOverride;
    switch (kind) {
      case LayerKind::Conv2d:
      case LayerKind::DepthwiseConv2d:
      case LayerKind::Pool2d:
        return bytesOf(dtype, std::uint64_t(batch) * inC * inH * inW);
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        return bytesOf(dtype, gemmM * gemmK * matmulCount);
      default:
        return bytesOf(dtype, elems);
    }
}

Bytes
Layer::weightBytes() const
{
    switch (kind) {
      case LayerKind::Conv2d:
        return bytesOf(dtype, std::uint64_t(inC) * outC * kernelH * kernelW);
      case LayerKind::DepthwiseConv2d:
        return bytesOf(dtype, std::uint64_t(outC) * kernelH * kernelW);
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        return bytesOf(dtype, gemmK * gemmN * matmulCount);
      case LayerKind::BatchNorm:
      case LayerKind::LayerNorm:
        // Scale and shift vectors; negligible but nonzero.
        return bytesOf(dtype, rowLen ? 2 * rowLen : 2);
      default:
        return 0;
    }
}

Bytes
Layer::outputBytes() const
{
    if (outputBytesOverride)
        return outputBytesOverride;
    switch (kind) {
      case LayerKind::Conv2d:
      case LayerKind::DepthwiseConv2d:
      case LayerKind::Pool2d:
        return bytesOf(dtype, std::uint64_t(batch) * outC * outH() * outW());
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        return bytesOf(dtype, gemmM * gemmN * matmulCount);
      default:
        return bytesOf(dtype, elems);
    }
}

void
Layer::lowerToGemm(std::uint64_t &m, std::uint64_t &k, std::uint64_t &n) const
{
    switch (kind) {
      case LayerKind::Conv2d:
        m = std::uint64_t(batch) * outH() * outW();
        k = std::uint64_t(inC) * kernelH * kernelW;
        n = outC;
        return;
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul:
        m = gemmM;
        k = gemmK;
        n = gemmN;
        return;
      default:
        panic("lowerToGemm on non-GEMM layer %s (%s)", name.c_str(),
              toString(kind));
    }
}

} // namespace model
} // namespace ascend
