/**
 * @file
 * ResNet50 v1.5 and VGG16 builders.
 */

#include "model/zoo.hh"

#include "common/logging.hh"

namespace ascend {
namespace model {
namespace zoo {

namespace {

/** Append conv + batchnorm (+ optional ReLU) to @p net. */
unsigned
convBnRelu(Network &net, const std::string &name, unsigned batch,
           unsigned in_c, unsigned spatial, unsigned out_c, unsigned kernel,
           unsigned stride, unsigned pad, bool relu, DataType dt)
{
    Layer conv = Layer::conv2d(name, batch, in_c, spatial, spatial, out_c,
                               kernel, stride, pad, dt);
    const unsigned out_sp = conv.outH();
    const std::uint64_t vol =
        std::uint64_t(batch) * out_c * out_sp * out_sp;
    net.add(conv);
    net.add(Layer::batchNorm(name + ".bn", vol, dt));
    if (relu)
        net.add(Layer::activation(name + ".relu", vol, ActKind::Relu, dt));
    return out_sp;
}

/** Append one ResNet bottleneck block. Returns the output spatial dim. */
unsigned
bottleneck(Network &net, const std::string &name, unsigned batch,
           unsigned in_c, unsigned mid_c, unsigned out_c, unsigned spatial,
           unsigned stride, DataType dt)
{
    convBnRelu(net, name + ".conv1", batch, in_c, spatial, mid_c,
               1, 1, 0, true, dt);
    // ResNet v1.5 strides in the 3x3 convolution.
    const unsigned sp2 = convBnRelu(net, name + ".conv2", batch, mid_c,
                                    spatial, mid_c, 3, stride, 1, true, dt);
    convBnRelu(net, name + ".conv3", batch, mid_c, sp2, out_c,
               1, 1, 0, false, dt);
    if (stride != 1 || in_c != out_c)
        convBnRelu(net, name + ".down", batch, in_c, spatial, out_c,
                   1, stride, 0, false, dt);
    const std::uint64_t vol = std::uint64_t(batch) * out_c * sp2 * sp2;
    net.add(Layer::elementwise(name + ".add", vol, dt));
    net.add(Layer::activation(name + ".relu", vol, ActKind::Relu, dt));
    return sp2;
}

} // anonymous namespace

Network
resnet50(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Network net;
    net.name = "resnet50";

    unsigned sp = convBnRelu(net, "conv1", batch, 3, 224, 64,
                             7, 2, 3, true, dt); // 112
    Layer pool = Layer::pool2d("maxpool", batch, 64, sp, sp, 3, 2, dt);
    pool.padH = pool.padW = 1;
    sp = pool.outH(); // 56
    net.add(pool);

    struct StageSpec { unsigned blocks, mid, out, stride; };
    static const StageSpec stages[] = {
        {3, 64, 256, 1},
        {4, 128, 512, 2},
        {6, 256, 1024, 2},
        {3, 512, 2048, 2},
    };
    unsigned in_c = 64;
    int stage_idx = 2;
    for (const StageSpec &s : stages) {
        for (unsigned b = 0; b < s.blocks; ++b) {
            const std::string name =
                "res" + std::to_string(stage_idx) + "." + std::to_string(b);
            const unsigned stride = (b == 0) ? s.stride : 1;
            sp = bottleneck(net, name, batch, in_c, s.mid, s.out, sp,
                            stride, dt);
            in_c = s.out;
        }
        ++stage_idx;
    }

    net.add(Layer::pool2d("avgpool", batch, in_c, sp, sp, sp, sp, dt));
    net.add(Layer::linear("fc", batch, in_c, 1000, dt));
    return net;
}

Network
vgg16(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Network net;
    net.name = "vgg16";

    struct Group { unsigned convs, channels; };
    static const Group groups[] = {
        {2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
    };
    unsigned sp = 224;
    unsigned in_c = 3;
    int gi = 1;
    for (const Group &g : groups) {
        for (unsigned c = 0; c < g.convs; ++c) {
            const std::string name = "conv" + std::to_string(gi) + "_" +
                                     std::to_string(c + 1);
            sp = convBnRelu(net, name, batch, in_c, sp, g.channels,
                            3, 1, 1, true, dt);
            in_c = g.channels;
        }
        Layer pool = Layer::pool2d("pool" + std::to_string(gi), batch,
                                   in_c, sp, sp, 2, 2, dt);
        sp = pool.outH();
        net.add(pool);
        ++gi;
    }

    const std::uint64_t flat = std::uint64_t(in_c) * sp * sp;
    net.add(Layer::linear("fc6", batch, flat, 4096, dt));
    net.add(Layer::activation("fc6.relu", std::uint64_t(batch) * 4096,
                              ActKind::Relu, dt));
    net.add(Layer::linear("fc7", batch, 4096, 4096, dt));
    net.add(Layer::activation("fc7.relu", std::uint64_t(batch) * 4096,
                              ActKind::Relu, dt));
    net.add(Layer::linear("fc8", batch, 4096, 1000, dt));
    return net;
}

} // namespace zoo
} // namespace model
} // namespace ascend
