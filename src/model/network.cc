/**
 * @file
 * Network metrics and backward expansion.
 */

#include "model/network.hh"

#include <algorithm>

namespace ascend {
namespace model {

Flops
Network::totalFlops() const
{
    Flops total = 0;
    for (const Layer &l : layers)
        total += l.flops();
    return total;
}

Bytes
Network::totalWeightBytes() const
{
    Bytes total = 0;
    for (const Layer &l : layers)
        total += l.weightBytes();
    return total;
}

Bytes
Network::parameterBytes() const
{
    Bytes total = 0;
    for (const Layer &l : layers) {
        // BatchedMatmul second operands are per-sample activations
        // (attention K/V), not parameters.
        if (l.kind != LayerKind::BatchedMatmul)
            total += l.weightBytes();
    }
    return total;
}

Bytes
Network::maxActivationBytes() const
{
    Bytes mx = 0;
    for (const Layer &l : layers)
        mx = std::max(mx, std::max(l.inputBytes(), l.outputBytes()));
    return mx;
}

const char *
toString(OptimizerKind opt)
{
    switch (opt) {
      case OptimizerKind::Sgd:      return "sgd";
      case OptimizerKind::Momentum: return "momentum";
      case OptimizerKind::Adam:     return "adam";
    }
    return "?";
}

namespace {

/** Vector passes the optimizer update needs per weight element. */
double
updatePasses(OptimizerKind opt)
{
    switch (opt) {
      case OptimizerKind::Sgd:      return 1.0; // w -= lr * g
      case OptimizerKind::Momentum: return 2.0; // v update + w update
      case OptimizerKind::Adam:     return 4.0; // m, v, correction, w
    }
    return 1.0;
}

/** Emit the optimizer update over @p weight_elems weight elements. */
model::Layer
makeUpdate(const std::string &name, std::uint64_t weight_elems,
           OptimizerKind opt)
{
    if (opt == OptimizerKind::Sgd)
        return Layer::elementwise(name, weight_elems, DataType::Fp32);
    Layer l = Layer::cvOp(name, weight_elems, updatePasses(opt),
                          DataType::Fp32);
    // Real operand streams: read gradient + weight + state tensors,
    // write weight + state tensors (all fp32).
    const unsigned states = optimizerStateTensors(opt);
    l.inputBytesOverride = bytesOf(DataType::Fp32, weight_elems) *
                           (2 + states);
    l.outputBytesOverride = bytesOf(DataType::Fp32, weight_elems) *
                            (1 + states);
    return l;
}

} // anonymous namespace

std::vector<Layer>
backwardLayers(const Layer &fwd, OptimizerKind opt)
{
    std::vector<Layer> bwd;
    switch (fwd.kind) {
      case LayerKind::Conv2d:
      case LayerKind::Linear:
      case LayerKind::BatchedMatmul: {
        std::uint64_t m, k, n;
        fwd.lowerToGemm(m, k, n);
        // dX = dY * W^T : (m x n) * (n x k)
        Layer dx = Layer::batchedMatmul(fwd.name + ".dX", fwd.matmulCount,
                                        m, n, k, fwd.dtype);
        // dW = X^T * dY : (k x m) * (m x n)
        Layer dw = Layer::batchedMatmul(fwd.name + ".dW", fwd.matmulCount,
                                        k, m, n, fwd.dtype);
        if (fwd.kind == LayerKind::Conv2d) {
            // The im2col-domain operands collapse back to the raw
            // activation tensor in memory (see Layer field docs).
            dx.outputBytesOverride = fwd.inputBytes();
            dw.inputBytesOverride = fwd.inputBytes();
        }
        bwd.push_back(dx);
        bwd.push_back(dw);
        // The optimizer update touches every weight element (plus its
        // state tensors): vector work over k*n elements.
        bwd.push_back(makeUpdate(fwd.name + ".update",
                                 k * n * fwd.matmulCount, opt));
        break;
      }
      case LayerKind::DepthwiseConv2d: {
        // dX and dW are both depthwise-shaped stencils.
        Layer dx = fwd;
        dx.kind = LayerKind::DepthwiseConv2d;
        dx.name = fwd.name + ".dX";
        Layer dw = dx;
        dw.name = fwd.name + ".dW";
        bwd.push_back(dx);
        bwd.push_back(dw);
        bwd.push_back(makeUpdate(
            fwd.name + ".update",
            std::uint64_t(fwd.outC) * fwd.kernelH * fwd.kernelW, opt));
        break;
      }
      case LayerKind::Pool2d: {
        // Gradient scatter over the input volume.
        bwd.push_back(Layer::elementwise(
            fwd.name + ".dX",
            std::uint64_t(fwd.batch) * fwd.inC * fwd.inH * fwd.inW,
            fwd.dtype));
        break;
      }
      case LayerKind::BatchNorm: {
        // dX needs mean/var gradients: ~3 passes over the volume, plus
        // the scale/shift parameter gradients.
        Layer dx = Layer::batchNorm(fwd.name + ".dX", fwd.elems, fwd.dtype);
        bwd.push_back(dx);
        bwd.push_back(Layer::elementwise(fwd.name + ".dGamma", fwd.elems,
                                         fwd.dtype));
        break;
      }
      case LayerKind::LayerNorm: {
        Layer dx = Layer::layerNorm(fwd.name + ".dX",
                                    fwd.rowLen ? fwd.elems / fwd.rowLen : 1,
                                    fwd.rowLen ? fwd.rowLen : fwd.elems,
                                    fwd.dtype);
        bwd.push_back(dx);
        bwd.push_back(Layer::elementwise(fwd.name + ".dGamma", fwd.elems,
                                         fwd.dtype));
        break;
      }
      case LayerKind::Activation: {
        bwd.push_back(Layer::elementwise(fwd.name + ".dX", fwd.elems,
                                         fwd.dtype));
        break;
      }
      case LayerKind::Softmax: {
        // dX = (dY - rowdot(dY, Y)) * Y: one reduction + one scale.
        Layer dx = Layer::softmax(fwd.name + ".dX",
                                  fwd.rowLen ? fwd.elems / fwd.rowLen : 1,
                                  fwd.rowLen ? fwd.rowLen : fwd.elems,
                                  fwd.dtype);
        bwd.push_back(dx);
        break;
      }
      case LayerKind::Elementwise:
      case LayerKind::CvOp: {
        // Gradient fan-out copy (CV ops are typically not trained
        // through; the copy models the pass-through cost).
        bwd.push_back(Layer::elementwise(fwd.name + ".dX", fwd.elems,
                                         fwd.dtype));
        break;
      }
    }
    return bwd;
}

std::vector<TrainingStep>
trainingSteps(const Network &net, OptimizerKind opt)
{
    std::vector<TrainingStep> steps;
    steps.reserve(net.layers.size());
    for (const Layer &l : net.layers)
        steps.push_back(TrainingStep{l, backwardLayers(l, opt)});
    return steps;
}

} // namespace model
} // namespace ascend
