/**
 * @file
 * BERT encoder builders (the Ascend-Max workload of Figs. 4, 5, 9).
 */

#include "model/zoo.hh"

#include "common/logging.hh"

namespace ascend {
namespace model {
namespace zoo {

Network
bert(const std::string &name, unsigned batch, unsigned seq_len,
     unsigned hidden, unsigned layers, unsigned heads, unsigned ffn,
     DataType dt)
{
    simAssert(batch > 0 && seq_len > 0 && hidden > 0, "bad BERT dims");
    simAssert(hidden % heads == 0, "hidden must divide by heads");
    const std::uint64_t tokens = std::uint64_t(batch) * seq_len;
    const unsigned head_dim = hidden / heads;

    Network net;
    net.name = name;

    // Embedding lookup is memory-bound gather work on the vector unit.
    net.add(Layer::elementwise("embed", tokens * hidden, dt));
    net.add(Layer::layerNorm("embed.ln", tokens, hidden, dt));

    for (unsigned l = 0; l < layers; ++l) {
        const std::string p = "enc" + std::to_string(l);
        // Fused QKV projection.
        net.add(Layer::linear(p + ".qkv", tokens, hidden,
                              3ull * hidden, dt));
        // Attention scores per head: (S x dh) * (dh x S).
        net.add(Layer::batchedMatmul(p + ".scores",
                                     std::uint64_t(batch) * heads,
                                     seq_len, head_dim, seq_len, dt));
        net.add(Layer::softmax(p + ".softmax",
                               std::uint64_t(batch) * heads * seq_len,
                               seq_len, dt));
        // Context: (S x S) * (S x dh).
        net.add(Layer::batchedMatmul(p + ".context",
                                     std::uint64_t(batch) * heads,
                                     seq_len, seq_len, head_dim, dt));
        net.add(Layer::linear(p + ".proj", tokens, hidden, hidden, dt));
        net.add(Layer::elementwise(p + ".add1", tokens * hidden, dt));
        net.add(Layer::layerNorm(p + ".ln1", tokens, hidden, dt));

        net.add(Layer::linear(p + ".ffn1", tokens, hidden, ffn, dt));
        net.add(Layer::activation(p + ".gelu", tokens * ffn,
                                  ActKind::Gelu, dt));
        net.add(Layer::linear(p + ".ffn2", tokens, ffn, hidden, dt));
        net.add(Layer::elementwise(p + ".add2", tokens * hidden, dt));
        net.add(Layer::layerNorm(p + ".ln2", tokens, hidden, dt));
    }

    net.add(Layer::linear("pooler", batch, hidden, hidden, dt));
    return net;
}

Network
bertLarge(unsigned batch, unsigned seq_len, DataType dt)
{
    return bert("bert_large", batch, seq_len, 1024, 24, 16, 4096, dt);
}

Network
bertBase(unsigned batch, unsigned seq_len, DataType dt)
{
    return bert("bert_base", batch, seq_len, 768, 12, 12, 3072, dt);
}

} // namespace zoo
} // namespace model
} // namespace ascend
