/**
 * @file
 * Shape-accurate builders for the networks the paper evaluates
 * (Table 1, Figs. 4-9): ResNet50, MobileNetV2, BERT, VGG16 and the
 * small always-on Gesture CNN run on Ascend-Tiny.
 */

#ifndef ASCEND_MODEL_ZOO_HH
#define ASCEND_MODEL_ZOO_HH

#include "model/network.hh"

namespace ascend {
namespace model {
namespace zoo {

/** ResNet50 v1.5 (224x224 input, 1000 classes). */
Network resnet50(unsigned batch, DataType dt = DataType::Fp16);

/** MobileNetV2 (224x224 input, width 1.0). */
Network mobilenetV2(unsigned batch, DataType dt = DataType::Fp16);

/** BERT encoder stack with explicit dimensions. */
Network bert(const std::string &name, unsigned batch, unsigned seq_len,
             unsigned hidden, unsigned layers, unsigned heads,
             unsigned ffn, DataType dt = DataType::Fp16);

/** BERT-Large (24 x 1024, 16 heads, 4096 FFN). */
Network bertLarge(unsigned batch, unsigned seq_len = 384,
                  DataType dt = DataType::Fp16);

/** BERT-Base (12 x 768, 12 heads, 3072 FFN). */
Network bertBase(unsigned batch, unsigned seq_len = 384,
                 DataType dt = DataType::Fp16);

/** Always-on gesture-inference CNN (96x96 RGB input, int8). */
Network gestureNet(unsigned batch);

/** VGG16 (224x224 input, 1000 classes). */
Network vgg16(unsigned batch, DataType dt = DataType::Fp16);

/**
 * MaskRCNN-style detector (Table 1's smart-city workload): ResNet50
 * backbone + FPN + RPN with NMS + RoiAlign + box and mask heads.
 */
Network maskRcnn(unsigned batch, DataType dt = DataType::Fp16);

/** Wide & Deep recommendation model (Table 1's Ascend-Max workload). */
Network wideDeep(unsigned batch, DataType dt = DataType::Fp16);

/** Stacked LSTM language model (the related-work NLP workload). */
Network lstm(unsigned batch, unsigned seq_len = 32,
             unsigned input_dim = 512, unsigned hidden = 1024,
             unsigned layers = 2, DataType dt = DataType::Fp16);

/**
 * Siamese tracking network (Table 1's intelligent-surveillance
 * workload): shared-weight template/search branches, depthwise
 * cross-correlation, and a box head.
 */
Network siameseTracker(unsigned batch, DataType dt = DataType::Fp16);

/**
 * PointNet-style point-cloud classifier (Table 1's "Pointsnet"
 * series): per-point shared MLPs + max-pool aggregation.
 */
Network pointNet(unsigned batch, unsigned points = 1024,
                 DataType dt = DataType::Fp16);

/**
 * SLAM front-end task mix for the automotive Vector Core
 * (Section 3.3): stereo, feature sort/match, quaternion pose,
 * clustering and linear programming as vector-unit operators.
 */
Network slamFrontend(unsigned points = 2048,
                     DataType dt = DataType::Fp16);

} // namespace zoo
} // namespace model
} // namespace ascend

#endif // ASCEND_MODEL_ZOO_HH
