/**
 * @file
 * Network container and training (backward) expansion.
 */

#ifndef ASCEND_MODEL_NETWORK_HH
#define ASCEND_MODEL_NETWORK_HH

#include <string>
#include <vector>

#include "model/layer.hh"

namespace ascend {
namespace model {

/** An ordered sequence of layers. */
struct Network
{
    std::string name;
    std::vector<Layer> layers;

    void add(Layer layer) { layers.push_back(std::move(layer)); }

    Flops totalFlops() const;

    /**
     * Sum of every layer's second-operand volume. For attention
     * matmuls this counts per-sample K/V operands, so it scales with
     * batch; use parameterBytes() for true trainable parameters.
     */
    Bytes totalWeightBytes() const;

    /** Trainable parameters only (gradient/allreduce volume). */
    Bytes parameterBytes() const;
    Bytes maxActivationBytes() const;
    std::size_t size() const { return layers.size(); }
};

/**
 * Optimizer choice for training expansion: each step up the ladder
 * adds optimizer-state tensors and elementwise passes (momentum: one
 * fp32 state; Adam: two states plus the bias-corrected update math).
 */
enum class OptimizerKind { Sgd, Momentum, Adam };

const char *toString(OptimizerKind opt);

/** fp32 optimizer-state tensors per weight tensor. */
inline unsigned
optimizerStateTensors(OptimizerKind opt)
{
    switch (opt) {
      case OptimizerKind::Sgd:      return 0;
      case OptimizerKind::Momentum: return 1;
      case OptimizerKind::Adam:     return 2;
    }
    return 0;
}

/**
 * Backward-pass layers for one forward layer.
 *
 * GEMM-like layers expand to the dX and dW GEMMs plus the elementwise
 * weight update; normalization and activation layers expand to
 * vector work of roughly twice the forward volume. This reproduces
 * the paper's observation (Fig. 5) that training shifts work towards
 * the vector unit.
 */
std::vector<Layer> backwardLayers(const Layer &fwd,
                                  OptimizerKind opt = OptimizerKind::Sgd);

/** Forward layer together with its backward expansion. */
struct TrainingStep
{
    Layer fwd;
    std::vector<Layer> bwd;
};

/** Training decomposition of a network, in forward layer order. */
std::vector<TrainingStep>
trainingSteps(const Network &net, OptimizerKind opt = OptimizerKind::Sgd);

} // namespace model
} // namespace ascend

#endif // ASCEND_MODEL_NETWORK_HH
