/**
 * @file
 * Layer-level IR for DNN workloads.
 *
 * The evaluation in the paper depends only on layer *shapes* (FLOPs,
 * operand volumes, cube-vs-vector affinity), never on weight values,
 * so the IR is a shape-accurate description: one tagged struct per
 * layer with factory constructors per kind and derived volume/FLOP
 * helpers. Networks are ordered layer sequences (model/network.hh).
 */

#ifndef ASCEND_MODEL_LAYER_HH
#define ASCEND_MODEL_LAYER_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ascend {
namespace model {

/** Supported layer kinds. */
enum class LayerKind {
    Conv2d,          ///< dense convolution (maps to cube via img2col)
    DepthwiseConv2d, ///< depthwise convolution (vector-unit bound)
    Linear,          ///< fully-connected / single GEMM
    BatchedMatmul,   ///< batch of small GEMMs (attention scores/context)
    Pool2d,          ///< average or max pooling
    BatchNorm,       ///< per-channel normalization
    LayerNorm,       ///< per-token normalization
    Activation,      ///< ReLU / GELU / sigmoid / swish
    Softmax,         ///< row-wise softmax
    Elementwise,     ///< binary elementwise op (residual add etc.)
    CvOp,            ///< CV / SLAM operator on the vector unit (RPN,
                     ///< RoiAlign, NMS, sort, stereo, quaternion...)
};

const char *toString(LayerKind kind);

/** Activation flavours (cost differs in datapath passes). */
enum class ActKind { Relu, Relu6, Gelu, Sigmoid, Swish };

/**
 * One layer. Fields are meaningful per kind; the factory functions
 * are the only sanctioned way to build one.
 */
struct Layer
{
    LayerKind kind = LayerKind::Conv2d;
    std::string name;
    DataType dtype = DataType::Fp16;

    /// @{ Convolution / pooling geometry (NCHW).
    unsigned batch = 1;
    unsigned inC = 0, outC = 0;
    unsigned inH = 0, inW = 0;
    unsigned kernelH = 1, kernelW = 1;
    unsigned strideH = 1, strideW = 1;
    unsigned padH = 0, padW = 0;
    /// @}

    /// @{ GEMM geometry: (m x k) * (k x n), repeated matmulCount times.
    std::uint64_t gemmM = 0, gemmK = 0, gemmN = 0;
    std::uint64_t matmulCount = 1;
    /// @}

    /// Element count for pure vector layers (norm/act/softmax/eltwise).
    std::uint64_t elems = 0;
    /// Row length for Softmax / LayerNorm reductions.
    std::uint64_t rowLen = 0;

    /// Datapath passes per element for CvOp layers (cost knob for the
    /// Table 2 / Section 3.3 vector-unit operator extensions).
    double cvPasses = 1.0;

    /// Extra vector passes fused into a cube layer's output eviction
    /// (set by compiler::fuseNetwork when it folds the following
    /// normalization / activation / residual layers into this one).
    double fusedEvictPasses = 0.0;

    ActKind act = ActKind::Relu;

    /// @{ Optional overrides for operand traffic volumes. Backward
    /// GEMMs of convolutions logically operate on the im2col-expanded
    /// matrix, but real implementations stream the *raw* activation
    /// tensor and expand on the fly; these overrides carry the raw
    /// volumes so memory models do not overcharge by the expansion
    /// factor. Zero means "no override".
    Bytes inputBytesOverride = 0;
    Bytes outputBytesOverride = 0;
    /// @}

    /// @{ Factories.
    static Layer conv2d(std::string name, unsigned batch, unsigned in_c,
                        unsigned in_h, unsigned in_w, unsigned out_c,
                        unsigned kernel, unsigned stride, unsigned pad,
                        DataType dt = DataType::Fp16);
    static Layer depthwiseConv2d(std::string name, unsigned batch,
                                 unsigned channels, unsigned in_h,
                                 unsigned in_w, unsigned kernel,
                                 unsigned stride, unsigned pad,
                                 DataType dt = DataType::Fp16);
    static Layer linear(std::string name, std::uint64_t m, std::uint64_t k,
                        std::uint64_t n, DataType dt = DataType::Fp16);
    static Layer batchedMatmul(std::string name, std::uint64_t count,
                               std::uint64_t m, std::uint64_t k,
                               std::uint64_t n,
                               DataType dt = DataType::Fp16);
    static Layer pool2d(std::string name, unsigned batch, unsigned channels,
                        unsigned in_h, unsigned in_w, unsigned kernel,
                        unsigned stride, DataType dt = DataType::Fp16);
    static Layer batchNorm(std::string name, std::uint64_t elems,
                           DataType dt = DataType::Fp16);
    static Layer layerNorm(std::string name, std::uint64_t rows,
                           std::uint64_t row_len,
                           DataType dt = DataType::Fp16);
    static Layer activation(std::string name, std::uint64_t elems,
                            ActKind act, DataType dt = DataType::Fp16);
    static Layer softmax(std::string name, std::uint64_t rows,
                         std::uint64_t row_len,
                         DataType dt = DataType::Fp16);
    static Layer elementwise(std::string name, std::uint64_t elems,
                             DataType dt = DataType::Fp16);
    /**
     * Generic CV / SLAM vector operator: @p passes datapath passes
     * over @p elems elements (e.g. NMS ~ log2(boxes) passes, stereo
     * matching ~ disparity-range passes, sorting ~ log2(n) passes).
     */
    static Layer cvOp(std::string name, std::uint64_t elems,
                      double passes, DataType dt = DataType::Fp16);
    /// @}

    /// @{ Derived geometry.
    unsigned outH() const;
    unsigned outW() const;
    /// @}

    /** True if the layer's main work runs on the cube unit. */
    bool isCubeLayer() const;

    /** MAC-based operation count (2 ops per MAC for GEMM-like work). */
    Flops flops() const;

    /** Activation input volume. */
    Bytes inputBytes() const;

    /** Weight/parameter volume (0 for parameter-free layers). */
    Bytes weightBytes() const;

    /** Activation output volume. */
    Bytes outputBytes() const;

    /**
     * The GEMM this layer lowers to after img2col:
     * m = batch * outH * outW, k = inC * kh * kw, n = outC.
     * Only valid for Conv2d / Linear / BatchedMatmul.
     */
    void lowerToGemm(std::uint64_t &m, std::uint64_t &k,
                     std::uint64_t &n) const;
};

} // namespace model
} // namespace ascend

#endif // ASCEND_MODEL_LAYER_HH
