/**
 * @file
 * Tensor helpers.
 */

#include "model/tensor.hh"

#include <algorithm>
#include <cmath>

namespace ascend {
namespace model {

float
Tensor::maxAbsDiff(const Tensor &other) const
{
    simAssert(numel() == other.numel(), "maxAbsDiff: size mismatch");
    float mx = 0.0f;
    for (std::size_t i = 0; i < numel(); ++i)
        mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
    return mx;
}

} // namespace model
} // namespace ascend
