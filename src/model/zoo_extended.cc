/**
 * @file
 * Extended model zoo: the remaining Table 1 workload families —
 * MaskRCNN-style detection (Ascend / smart city), Wide & Deep
 * recommendation and an LSTM language model (Ascend-Max training),
 * and the SLAM front-end task mix the automotive Vector Core runs
 * (Section 3.3).
 */

#include "model/zoo.hh"

#include "common/logging.hh"

namespace ascend {
namespace model {
namespace zoo {

namespace {

void
addConvBnRelu(Network &net, const std::string &name, unsigned batch,
              unsigned in_c, unsigned spatial, unsigned out_c,
              unsigned kernel, unsigned stride, unsigned pad, DataType dt)
{
    Layer conv = Layer::conv2d(name, batch, in_c, spatial, spatial, out_c,
                               kernel, stride, pad, dt);
    const std::uint64_t vol =
        std::uint64_t(batch) * out_c * conv.outH() * conv.outW();
    net.add(conv);
    net.add(Layer::batchNorm(name + ".bn", vol, dt));
    net.add(Layer::activation(name + ".relu", vol, ActKind::Relu, dt));
}

} // anonymous namespace

Network
maskRcnn(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    // ResNet50 backbone...
    Network net = resnet50(batch, dt);
    net.name = "mask_rcnn";
    // ...minus the classification head (avgpool + fc).
    net.layers.pop_back();
    net.layers.pop_back();

    // FPN: lateral 1x1 convolutions on C2..C5 plus 3x3 smoothing.
    struct Level { unsigned channels, spatial; };
    static const Level levels[] = {
        {256, 56}, {512, 28}, {1024, 14}, {2048, 7},
    };
    for (const Level &lv : levels) {
        const std::string p = "fpn.p" + std::to_string(lv.spatial);
        net.add(Layer::conv2d(p + ".lateral", batch, lv.channels,
                              lv.spatial, lv.spatial, 256, 1, 1, 0, dt));
        net.add(Layer::conv2d(p + ".smooth", batch, 256, lv.spatial,
                              lv.spatial, 256, 3, 1, 1, dt));
        // Top-down upsample + add.
        net.add(Layer::elementwise(
            p + ".add",
            std::uint64_t(batch) * 256 * lv.spatial * lv.spatial, dt));
    }

    // RPN over the largest level: objectness + box regression, then
    // proposal NMS (a Table 2 "CV operator" on the vector unit).
    net.add(Layer::conv2d("rpn.conv", batch, 256, 56, 56, 256,
                          3, 1, 1, dt));
    net.add(Layer::conv2d("rpn.cls", batch, 256, 56, 56, 3, 1, 1, 0, dt));
    net.add(Layer::conv2d("rpn.reg", batch, 256, 56, 56, 12,
                          1, 1, 0, dt));
    const std::uint64_t anchors = std::uint64_t(batch) * 3 * 56 * 56;
    net.add(Layer::cvOp("rpn.nms", anchors * 5, 14.0, dt)); // ~log2 sort

    // RoiAlign for 512 proposals at 7x7x256.
    const std::uint64_t roi_elems =
        std::uint64_t(batch) * 512 * 7 * 7 * 256;
    net.add(Layer::cvOp("roi_align", roi_elems, 4.0, dt)); // bilinear

    // Box head: two FC layers + classifier/regressor.
    const std::uint64_t rois = std::uint64_t(batch) * 512;
    net.add(Layer::linear("box.fc1", rois, 7 * 7 * 256, 1024, dt));
    net.add(Layer::activation("box.fc1.relu", rois * 1024,
                              ActKind::Relu, dt));
    net.add(Layer::linear("box.fc2", rois, 1024, 1024, dt));
    net.add(Layer::activation("box.fc2.relu", rois * 1024,
                              ActKind::Relu, dt));
    net.add(Layer::linear("box.cls", rois, 1024, 81, dt));
    net.add(Layer::linear("box.reg", rois, 1024, 320, dt));

    // Mask head: four 3x3 convolutions + deconv + mask predictor over
    // 100 kept RoIs. The RoI dimension folds into the batch.
    const unsigned kept = 100 * batch;
    for (int i = 1; i <= 4; ++i)
        addConvBnRelu(net, "mask.conv" + std::to_string(i), kept, 256,
                      14, 256, 3, 1, 1, dt);
    addConvBnRelu(net, "mask.deconv", kept, 256, 28, 256, 3, 1, 1, dt);
    net.add(Layer::conv2d("mask.pred", kept, 256, 28, 28, 81,
                          1, 1, 0, dt));
    return net;
}

Network
wideDeep(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Network net;
    net.name = "wide_and_deep";
    // 26 categorical features gathered from embedding tables: a
    // memory-bound gather the vector unit performs.
    const unsigned features = 26;
    const unsigned embed_dim = 32;
    net.add(Layer::cvOp("embed.gather",
                        std::uint64_t(batch) * features * embed_dim,
                        2.0, dt));
    // Wide part: a single sparse linear over the crossed features.
    net.add(Layer::linear("wide", batch, 1024, 1, dt));
    // Deep part: the canonical 1024-512-256 MLP.
    unsigned in_dim = features * embed_dim + 13; // + dense features
    for (unsigned width : {1024u, 512u, 256u}) {
        const std::string name = "deep.fc" + std::to_string(width);
        net.add(Layer::linear(name, batch, in_dim, width, dt));
        net.add(Layer::activation(name + ".relu",
                                  std::uint64_t(batch) * width,
                                  ActKind::Relu, dt));
        in_dim = width;
    }
    net.add(Layer::linear("head", batch, in_dim + 1, 1, dt));
    net.add(Layer::activation("sigmoid", batch, ActKind::Sigmoid, dt));
    return net;
}

Network
lstm(unsigned batch, unsigned seq_len, unsigned input_dim,
     unsigned hidden, unsigned layers, DataType dt)
{
    simAssert(batch > 0 && seq_len > 0 && hidden > 0, "bad LSTM dims");
    Network net;
    net.name = "lstm";
    for (unsigned l = 0; l < layers; ++l) {
        const unsigned in_dim = l == 0 ? input_dim : hidden;
        for (unsigned t = 0; t < seq_len; ++t) {
            const std::string p = "l" + std::to_string(l) + ".t" +
                                  std::to_string(t);
            // Fused input and recurrent projections to the 4 gates.
            net.add(Layer::linear(p + ".x", batch, in_dim,
                                  4ull * hidden, dt));
            net.add(Layer::linear(p + ".h", batch, hidden,
                                  4ull * hidden, dt));
            // Gate nonlinearities + cell update (sigmoid/tanh mix).
            net.add(Layer::cvOp(p + ".gates",
                                std::uint64_t(batch) * 4 * hidden,
                                3.0, dt));
        }
    }
    net.add(Layer::linear("proj", std::uint64_t(batch) * seq_len, hidden,
                          input_dim, dt));
    return net;
}

Network
siameseTracker(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Network net;
    net.name = "siamese_tracker";
    // Shared AlexNet-ish backbone, run on the 127x127 template and
    // the 255x255 search region (weights shared, compute doubled).
    struct Branch { const char *name; unsigned input; };
    static const Branch branches[] = {
        {"template", 127}, {"search", 255},
    };
    for (const Branch &br : branches) {
        unsigned sp = br.input;
        unsigned in_c = 3;
        struct ConvSpec { unsigned out_c, kernel, stride; };
        static const ConvSpec specs[] = {
            {96, 11, 2}, {256, 5, 1}, {384, 3, 1}, {384, 3, 1},
            {256, 3, 1},
        };
        int ci = 1;
        for (const ConvSpec &spec : specs) {
            const std::string name = std::string(br.name) + ".conv" +
                                     std::to_string(ci++);
            addConvBnRelu(net, name, batch, in_c, sp, spec.out_c,
                          spec.kernel, spec.stride, 0, dt);
            sp = (sp - spec.kernel) / spec.stride + 1;
            if (ci == 2 || ci == 3) { // pool after conv1/conv2
                Layer pool = Layer::pool2d(name + ".pool", batch,
                                           spec.out_c, sp, sp, 3, 2, dt);
                sp = pool.outH();
                net.add(pool);
            }
            in_c = spec.out_c;
        }
    }
    // Depthwise cross-correlation: the search feature map correlated
    // with the template kernel, per channel (a CV op on the vector
    // unit), then a 1x1 box/score head.
    const std::uint64_t corr =
        std::uint64_t(batch) * 256 * 17 * 17;
    net.add(Layer::cvOp("xcorr", corr, 36.0, dt)); // 6x6 template taps
    net.add(Layer::conv2d("head.cls", batch, 256, 17, 17, 10,
                          1, 1, 0, dt));
    net.add(Layer::conv2d("head.reg", batch, 256, 17, 17, 20,
                          1, 1, 0, dt));
    return net;
}

Network
pointNet(unsigned batch, unsigned points, DataType dt)
{
    simAssert(batch > 0 && points > 0, "bad pointnet dims");
    Network net;
    net.name = "pointnet";
    const std::uint64_t rows = std::uint64_t(batch) * points;
    // Per-point shared MLPs are (B*N) x C GEMMs.
    unsigned in_dim = 3;
    for (unsigned width : {64u, 64u, 128u, 1024u}) {
        const std::string name = "mlp" + std::to_string(width);
        net.add(Layer::linear(name, rows, in_dim, width, dt));
        net.add(Layer::batchNorm(name + ".bn", rows * width, dt));
        net.add(Layer::activation(name + ".relu", rows * width,
                                  ActKind::Relu, dt));
        in_dim = width;
    }
    // Symmetric max aggregation over points (a reduction CV op).
    net.add(Layer::cvOp("maxpool.points", rows * 1024 / points, 8.0,
                        dt));
    // Classifier head.
    net.add(Layer::linear("fc1", batch, 1024, 512, dt));
    net.add(Layer::activation("fc1.relu",
                              std::uint64_t(batch) * 512,
                              ActKind::Relu, dt));
    net.add(Layer::linear("fc2", batch, 512, 40, dt));
    return net;
}

Network
slamFrontend(unsigned points, DataType dt)
{
    simAssert(points > 0, "points must be positive");
    Network net;
    net.name = "slam_frontend";
    // The Section 3.3 Vector Core task mix: stereo matching, feature
    // sort, quaternion pose chains, clustering and a small LP solve.
    const std::uint64_t px = 1280ull * 720;
    net.add(Layer::cvOp("stereo.sad", px, 64.0, dt)); // disparity range
    net.add(Layer::cvOp("feature.response", px, 6.0, dt));
    net.add(Layer::cvOp("feature.sort", points,
                        16.0, dt)); // bitonic ~log^2(n)
    net.add(Layer::cvOp("descriptor.match",
                        std::uint64_t(points) * 32, 8.0, dt));
    net.add(Layer::cvOp("pose.quaternion", std::uint64_t(points) * 4,
                        6.0, dt));
    // General (quaternion) matrix work maps to small GEMMs.
    net.add(Layer::batchedMatmul("pose.jacobian", points, 4, 4, 4, dt));
    net.add(Layer::cvOp("cluster.kmeans", std::uint64_t(points) * 8,
                        12.0, dt));
    net.add(Layer::cvOp("lp.solve", 4096, 24.0, dt));
    return net;
}

} // namespace zoo
} // namespace model
} // namespace ascend
