/**
 * @file
 * MobileNetV2 and Gesture-CNN builders (the Lite / Tiny workloads).
 */

#include "model/zoo.hh"

#include "common/logging.hh"

namespace ascend {
namespace model {
namespace zoo {

namespace {

std::uint64_t
volume(unsigned batch, unsigned c, unsigned sp)
{
    return std::uint64_t(batch) * c * sp * sp;
}

void
addBnAct(Network &net, const std::string &name, std::uint64_t vol,
         bool relu6, DataType dt)
{
    net.add(Layer::batchNorm(name + ".bn", vol, dt));
    if (relu6)
        net.add(Layer::activation(name + ".relu6", vol, ActKind::Relu6, dt));
}

/**
 * One MobileNetV2 inverted-residual block.
 *
 * @param expand Expansion ratio t.
 * @return output spatial dimension.
 */
unsigned
invertedResidual(Network &net, const std::string &name, unsigned batch,
                 unsigned in_c, unsigned out_c, unsigned spatial,
                 unsigned stride, unsigned expand, DataType dt)
{
    const unsigned mid_c = in_c * expand;
    unsigned sp = spatial;
    if (expand != 1) {
        net.add(Layer::conv2d(name + ".expand", batch, in_c, sp, sp,
                              mid_c, 1, 1, 0, dt));
        addBnAct(net, name + ".expand", volume(batch, mid_c, sp), true, dt);
    }
    Layer dw = Layer::depthwiseConv2d(name + ".dw", batch, mid_c, sp, sp,
                                      3, stride, 1, dt);
    sp = dw.outH();
    net.add(dw);
    addBnAct(net, name + ".dw", volume(batch, mid_c, sp), true, dt);

    net.add(Layer::conv2d(name + ".project", batch, mid_c, sp, sp,
                          out_c, 1, 1, 0, dt));
    addBnAct(net, name + ".project", volume(batch, out_c, sp), false, dt);

    if (stride == 1 && in_c == out_c)
        net.add(Layer::elementwise(name + ".add",
                                   volume(batch, out_c, sp), dt));
    return sp;
}

} // anonymous namespace

Network
mobilenetV2(unsigned batch, DataType dt)
{
    simAssert(batch > 0, "batch must be positive");
    Network net;
    net.name = "mobilenet_v2";

    Layer stem = Layer::conv2d("conv0", batch, 3, 224, 224, 32, 3, 2, 1, dt);
    unsigned sp = stem.outH(); // 112
    net.add(stem);
    addBnAct(net, "conv0", volume(batch, 32, sp), true, dt);

    struct BlockSpec { unsigned t, c, n, s; };
    static const BlockSpec specs[] = {
        {1, 16, 1, 1},
        {6, 24, 2, 2},
        {6, 32, 3, 2},
        {6, 64, 4, 2},
        {6, 96, 3, 1},
        {6, 160, 3, 2},
        {6, 320, 1, 1},
    };
    unsigned in_c = 32;
    int bi = 1;
    for (const BlockSpec &spec : specs) {
        for (unsigned i = 0; i < spec.n; ++i) {
            const std::string name = "block" + std::to_string(bi++);
            const unsigned stride = (i == 0) ? spec.s : 1;
            sp = invertedResidual(net, name, batch, in_c, spec.c, sp,
                                  stride, spec.t, dt);
            in_c = spec.c;
        }
    }

    net.add(Layer::conv2d("conv_last", batch, in_c, sp, sp, 1280,
                          1, 1, 0, dt));
    addBnAct(net, "conv_last", volume(batch, 1280, sp), true, dt);
    net.add(Layer::pool2d("avgpool", batch, 1280, sp, sp, sp, sp, dt));
    net.add(Layer::linear("fc", batch, 1280, 1000, dt));
    return net;
}

Network
gestureNet(unsigned batch)
{
    simAssert(batch > 0, "batch must be positive");
    const DataType dt = DataType::Int8; // Ascend-Tiny is int8-only
    Network net;
    net.name = "gesture_net";

    struct ConvSpec { unsigned out_c, kernel, stride; };
    static const ConvSpec specs[] = {
        {8, 5, 2}, {16, 3, 1}, {32, 3, 2}, {64, 3, 2}, {64, 3, 2},
    };
    unsigned sp = 96;
    unsigned in_c = 3; // RGB input
    int ci = 1;
    for (const ConvSpec &spec : specs) {
        const std::string name = "conv" + std::to_string(ci++);
        Layer conv = Layer::conv2d(name, batch, in_c, sp, sp, spec.out_c,
                                   spec.kernel, spec.stride,
                                   spec.kernel / 2, dt);
        sp = conv.outH();
        net.add(conv);
        addBnAct(net, name, volume(batch, spec.out_c, sp), true, dt);
        in_c = spec.out_c;
    }

    net.add(Layer::pool2d("avgpool", batch, in_c, sp, sp, sp, sp, dt));
    net.add(Layer::linear("fc", batch, in_c, 8, dt));
    return net;
}

} // namespace zoo
} // namespace model
} // namespace ascend
