/**
 * @file
 * Tracer implementation: thread-local buffers, deterministic merge,
 * Chrome trace-event JSON emission.
 */

#include "obs/tracer.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "isa/instruction.hh"

namespace ascend {
namespace obs {

namespace {

/**
 * Per-thread buffers compact (sort + dedup in place) past this size,
 * so repetitive workloads — benchmark iterations replaying one
 * program — stay bounded in memory. Compaction never changes the
 * final merged set: dedup is idempotent under union.
 */
constexpr std::size_t kCompactAt = std::size_t(1) << 20;

int
cstrCompare(const char *a, const char *b)
{
    return std::strcmp(a ? a : "", b ? b : "");
}

bool
spanLess(const Span &a, const Span &b)
{
    if (a.pid != b.pid)
        return a.pid < b.pid;
    if (a.tid != b.tid)
        return a.tid < b.tid;
    if (a.start != b.start)
        return a.start < b.start;
    if (a.duration != b.duration)
        return a.duration < b.duration;
    const int c = cstrCompare(a.name, b.name);
    if (c != 0)
        return c < 0;
    return a.bytes < b.bytes;
}

bool
spanEq(const Span &a, const Span &b)
{
    return a.pid == b.pid && a.tid == b.tid && a.start == b.start &&
           a.duration == b.duration && a.bytes == b.bytes &&
           cstrCompare(a.name, b.name) == 0;
}

bool
counterLess(const CounterSample &a, const CounterSample &b)
{
    if (a.pid != b.pid)
        return a.pid < b.pid;
    const int c = cstrCompare(a.name, b.name);
    if (c != 0)
        return c < 0;
    if (a.ts != b.ts)
        return a.ts < b.ts;
    return a.value < b.value;
}

bool
counterEq(const CounterSample &a, const CounterSample &b)
{
    return a.pid == b.pid && a.ts == b.ts && a.value == b.value &&
           cstrCompare(a.name, b.name) == 0;
}

void
compactSpans(std::vector<Span> &spans)
{
    std::sort(spans.begin(), spans.end(), spanLess);
    spans.erase(std::unique(spans.begin(), spans.end(), spanEq),
                spans.end());
}

void
compactCounters(std::vector<CounterSample> &counters)
{
    std::sort(counters.begin(), counters.end(), counterLess);
    counters.erase(
        std::unique(counters.begin(), counters.end(), counterEq),
        counters.end());
}

const char *
processName(std::uint32_t pid)
{
    switch (static_cast<Domain>(pid)) {
      case Domain::Core:    return "core pipes (cycles)";
      case Domain::Chip:    return "chip sim (ns)";
      case Domain::Llc:     return "llc (ticks)";
      case Domain::Noc:     return "noc mesh (cycles)";
      case Domain::Cluster: return "cluster collectives (ns)";
      case Domain::Kernel:  return "des kernel (ns)";
      case Domain::Serving: return "serving fleet (ns)";
      case Domain::Surrogate: return "surrogate (cycles)";
      case Domain::Graph:   return "graph lowering (cycles)";
    }
    return "?";
}

std::string
trackName(std::uint32_t pid, std::uint32_t tid)
{
    switch (static_cast<Domain>(pid)) {
      case Domain::Core:
        if (tid >= 1 && tid <= isa::kNumPipes)
            return isa::toString(static_cast<isa::Pipe>(tid - 1));
        return "pipe?";
      case Domain::Chip:    return "core" + std::to_string(tid - 1);
      case Domain::Llc:     return "llc";
      case Domain::Noc:     return "mesh";
      case Domain::Cluster:
        return tid == 2 ? "elastic recovery" : "phases";
      case Domain::Kernel:  return "phases";
      case Domain::Serving:
        return tid == 1 ? "fleet"
                        : "replica" + std::to_string(tid - 2);
      case Domain::Surrogate: return "layers";
      case Domain::Graph:   return "nodes";
    }
    return "?";
}

void
appendEscaped(std::string &out, const char *s)
{
    for (; s && *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
}

/** Deterministic double formatting (round-trip precision). */
std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
atexitWriter()
{
    Tracer::instance().stop();
}

/**
 * Honor ASCEND_TRACE as soon as the library is loaded, so every
 * binary linking the simulator gets the knob with no code changes.
 */
const bool kEnvInit = [] {
    if (kTraceCompiledIn)
        Tracer::instance().startFromEnv();
    return true;
}();

} // anonymous namespace

std::atomic<bool> &
Tracer::activeFlag()
{
    static std::atomic<bool> active{false};
    return active;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::start(const std::string &path)
{
    if (!kTraceCompiledIn)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
    if (!path_.empty() && !atexitRegistered_) {
        atexitRegistered_ = true;
        std::atexit(atexitWriter);
    }
    activeFlag().store(true, std::memory_order_relaxed);
}

void
Tracer::startFromEnv()
{
    const char *path = std::getenv("ASCEND_TRACE");
    if (path && *path)
        start(path);
}

void
Tracer::stop()
{
    if (!enabled())
        return;
    activeFlag().store(false, std::memory_order_relaxed);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        path = path_;
    }
    if (!path.empty()) {
        std::ofstream out(path, std::ios::trunc);
        if (out)
            write(out);
    }
    clear();
}

Tracer::Buffer &
Tracer::localBuffer()
{
    // One buffer per (thread, tracer) for the process lifetime; the
    // tracer owns it, the thread keeps a raw pointer, so neither
    // thread exit nor clear() invalidates anything.
    thread_local Buffer *buf = nullptr;
    if (!buf) {
        auto owned = std::make_unique<Buffer>();
        buf = owned.get();
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.push_back(std::move(owned));
    }
    return *buf;
}

void
Tracer::span(Domain domain, std::uint32_t track, const char *name,
             std::uint64_t start, std::uint64_t duration,
             std::uint64_t bytes)
{
    if (!enabled())
        return;
    Buffer &buf = localBuffer();
    buf.spans.push_back(Span{static_cast<std::uint32_t>(domain), track,
                             start, duration, name, bytes});
    if (buf.spans.size() >= kCompactAt)
        compactSpans(buf.spans);
}

void
Tracer::counter(Domain domain, const char *name, std::uint64_t ts,
                double value)
{
    if (!enabled())
        return;
    Buffer &buf = localBuffer();
    buf.counters.push_back(CounterSample{
        static_cast<std::uint32_t>(domain), ts, name, value});
    if (buf.counters.size() >= kCompactAt)
        compactCounters(buf.counters);
}

void
Tracer::collect(std::vector<Span> &spans,
                std::vector<CounterSample> &counters)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buf : buffers_) {
        spans.insert(spans.end(), buf->spans.begin(),
                     buf->spans.end());
        counters.insert(counters.end(), buf->counters.begin(),
                        buf->counters.end());
    }
    compactSpans(spans);
    compactCounters(counters);
}

void
Tracer::write(std::ostream &os)
{
    std::vector<Span> spans;
    std::vector<CounterSample> counters;
    collect(spans, counters);

    // Metadata rows name the processes and tracks that appear.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> tracks;
    for (const Span &s : spans)
        tracks.emplace_back(s.pid, s.tid);
    for (const CounterSample &c : counters)
        tracks.emplace_back(c.pid, 0);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()),
                 tracks.end());

    std::string out;
    out.reserve(128 + spans.size() * 96 + counters.size() * 96 +
                tracks.size() * 192);
    out += "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out += ',';
        first = false;
        out += '\n';
    };

    std::uint32_t last_pid = 0;
    for (const auto &[pid, tid] : tracks) {
        if (pid != last_pid) {
            last_pid = pid;
            sep();
            out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
            out += std::to_string(pid);
            out += ",\"args\":{\"name\":\"";
            appendEscaped(out, processName(pid));
            out += "\"}}";
        }
        if (tid == 0)
            continue; // counter-only rows need no thread metadata
        sep();
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":";
        out += std::to_string(tid);
        out += ",\"args\":{\"name\":\"";
        appendEscaped(out, trackName(pid, tid).c_str());
        out += "\"}}";
    }

    for (const Span &s : spans) {
        sep();
        out += "{\"name\":\"";
        appendEscaped(out, s.name ? s.name : "span");
        out += "\",\"ph\":\"X\",\"pid\":";
        out += std::to_string(s.pid);
        out += ",\"tid\":";
        out += std::to_string(s.tid);
        out += ",\"ts\":";
        out += std::to_string(s.start);
        out += ",\"dur\":";
        out += std::to_string(s.duration);
        if (s.bytes) {
            out += ",\"args\":{\"bytes\":";
            out += std::to_string(s.bytes);
            out += '}';
        }
        out += '}';
    }

    for (const CounterSample &c : counters) {
        sep();
        out += "{\"name\":\"";
        appendEscaped(out, c.name ? c.name : "counter");
        out += "\",\"ph\":\"C\",\"pid\":";
        out += std::to_string(c.pid);
        out += ",\"ts\":";
        out += std::to_string(c.ts);
        out += ",\"args\":{\"value\":";
        out += formatDouble(c.value);
        out += "}}";
    }

    out += "\n]}\n";
    os << out;
}

std::string
Tracer::json()
{
    std::ostringstream os;
    write(os);
    return os.str();
}

std::size_t
Tracer::spanCount()
{
    std::vector<Span> spans;
    std::vector<CounterSample> counters;
    collect(spans, counters);
    return spans.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buf : buffers_) {
        buf->spans.clear();
        buf->counters.clear();
    }
}

} // namespace obs
} // namespace ascend
