/**
 * @file
 * Chrome trace-event JSON emission for single-run pipe traces.
 */

#include "obs/pipe_trace.hh"

namespace ascend {
namespace obs {

void
PipeTrace::writeChromeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const PipeTraceEvent &e : events_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << (e.tag ? e.tag : "instr")
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << static_cast<unsigned>(e.pipe) + 1
           << ",\"ts\":" << e.start << ",\"dur\":" << e.duration << "}";
    }
    // Thread-name metadata so the viewer labels pipes.
    for (std::size_t p = 0; p < isa::kNumPipes; ++p) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << p + 1 << ",\"args\":{\"name\":\""
           << isa::toString(static_cast<isa::Pipe>(p)) << "\"}}";
    }
    os << "]}\n";
}

Cycles
PipeTrace::busyCycles(isa::Pipe pipe) const
{
    Cycles total = 0;
    for (const PipeTraceEvent &e : events_)
        if (e.pipe == pipe)
            total += e.duration;
    return total;
}

} // namespace obs
} // namespace ascend
