/**
 * @file
 * Sim-time observability: the process-wide event tracer.
 *
 * Every simulator layer (core pipes, fluid chip sim, LLC, mesh NoC,
 * cluster collectives) can record *sim-time* spans and counters here;
 * the tracer merges them into one Chrome/Perfetto trace-event JSON
 * file. Timestamps are simulated time (cycles for cycle-driven
 * domains, nanoseconds for fluid/analytical domains), never wall
 * clock, and events carry no thread or allocation identity — which is
 * what makes the output deterministic.
 *
 * Determinism contract: recording goes to thread-local buffers; at
 * write time all buffers are merged, sorted by the full event tuple
 * (domain, track, start, duration, name, bytes) and deduplicated.
 * Because every field is derived from sim time and static labels, the
 * merged set — and therefore the emitted JSON, byte for byte — is
 * independent of ASCEND_THREADS, of scheduling, and of how many times
 * an identical simulation was repeated (e.g. benchmark iterations).
 *
 * Overhead contract: when tracing is disabled (the default), the only
 * cost at a record site is one relaxed atomic load and a predictable
 * branch; bench_trace_overhead asserts the end-to-end cost stays
 * under 5%. Compiling with -DASCEND_OBS_NO_TRACE removes even that
 * (enabled() becomes a compile-time false and the ring buffers are
 * compiled out).
 *
 * Activation: set ASCEND_TRACE=<path> in the environment (the trace
 * is written at process exit or at stop()), or call
 * Tracer::instance().start(path) / stop() programmatically.
 *
 * Threading contract: span()/counter() are safe from any thread, but
 * start()/stop()/clear()/json() must run while no simulation is in
 * flight (after parallelFor has joined). The simulator's entry points
 * all satisfy this naturally.
 */

#ifndef ASCEND_OBS_TRACER_HH
#define ASCEND_OBS_TRACER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ascend {
namespace obs {

#ifdef ASCEND_OBS_NO_TRACE
constexpr bool kTraceCompiledIn = false;
#else
constexpr bool kTraceCompiledIn = true;
#endif

/**
 * Trace domains, one viewer "process" each. The numeric value is the
 * Chrome trace pid, so it is part of the stable output format.
 */
enum class Domain : std::uint32_t {
    Core = 1,    ///< core pipes; timestamps in core cycles
    Chip = 2,    ///< fluid chip sim; timestamps in nanoseconds
    Llc = 3,     ///< LLC model; timestamps in access ticks
    Noc = 4,     ///< mesh NoC; timestamps in NoC cycles
    Cluster = 5, ///< collective phases; timestamps in nanoseconds
    Kernel = 6,  ///< des kernel phases; timestamps in nanoseconds
    Serving = 7, ///< fleet serving sim; timestamps in nanoseconds
    Surrogate = 8, ///< surrogate cost model; timestamps in core cycles
    Graph = 9,   ///< graph lowering; timestamps in core cycles
};

/** One completed interval on a (domain, track) timeline. */
struct Span
{
    std::uint32_t pid = 0;      ///< Domain
    std::uint32_t tid = 0;      ///< track within the domain (1-based)
    std::uint64_t start = 0;    ///< sim-time units of the domain
    std::uint64_t duration = 0;
    const char *name = nullptr; ///< static label; may be null
    std::uint64_t bytes = 0;    ///< payload moved; 0 = not reported
};

/** One counter sample on a (domain, name) series. */
struct CounterSample
{
    std::uint32_t pid = 0;
    std::uint64_t ts = 0;
    const char *name = nullptr;
    double value = 0;
};

/**
 * The process-wide tracer singleton.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /**
     * Cheap global gate for record sites. Hoist into a pointer at
     * region entry: `Tracer *tr = Tracer::current();`.
     */
    static bool
    enabled()
    {
        return kTraceCompiledIn &&
               activeFlag().load(std::memory_order_relaxed);
    }

    /** The tracer when enabled, nullptr otherwise. */
    static Tracer *
    current()
    {
        return enabled() ? &instance() : nullptr;
    }

    /**
     * Begin collecting. @p path is where stop() (or process exit)
     * writes the JSON; empty collects in memory only (tests use
     * json() instead).
     */
    void start(const std::string &path);

    /** start(ASCEND_TRACE) when the variable is set and non-empty. */
    void startFromEnv();

    /**
     * Stop collecting; if a path was given, write the trace file.
     * Buffers are cleared. Safe to call when not started.
     */
    void stop();

    /** Record one span. No-op (beyond buffering) when stopped. */
    void span(Domain domain, std::uint32_t track, const char *name,
              std::uint64_t start, std::uint64_t duration,
              std::uint64_t bytes = 0);

    /** Record one counter sample. */
    void counter(Domain domain, const char *name, std::uint64_t ts,
                 double value);

    /**
     * Merge, sort, dedup and emit Chrome trace-event JSON. The text
     * is deterministic: byte-identical for identical simulated work
     * at any thread count.
     */
    void write(std::ostream &os);

    /** write() into a string. */
    std::string json();

    /** Deduplicated span count (for tests). */
    std::size_t spanCount();

    /** Drop all recorded events; keeps the active/path state. */
    void clear();

    bool active() const { return enabled(); }
    const std::string &path() const { return path_; }

  private:
    Tracer() = default;

    struct Buffer
    {
        std::vector<Span> spans;
        std::vector<CounterSample> counters;
    };

    static std::atomic<bool> &activeFlag();

    Buffer &localBuffer();
    /** Merged + sorted + deduped view of all buffers. */
    void collect(std::vector<Span> &spans,
                 std::vector<CounterSample> &counters);

    std::mutex mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::string path_;
    bool atexitRegistered_ = false;

    friend struct TracerTestAccess;
};

} // namespace obs
} // namespace ascend

#endif // ASCEND_OBS_TRACER_HH
