/**
 * @file
 * Per-run pipe trace: the caller-owned event collector the core
 * simulator fills when a run wants its own isolated trace (the
 * paper's Fig. 3 pipe-overlap picture for one program).
 *
 * This is the old core::Trace, absorbed into the observability layer:
 * same event model as the process-wide obs::Tracer (one span per
 * executed instruction), but scoped to a single CoreSim::run call and
 * always on when passed. Use obs::Tracer + ASCEND_TRACE for
 * whole-process traces across all simulator layers.
 */

#ifndef ASCEND_OBS_PIPE_TRACE_HH
#define ASCEND_OBS_PIPE_TRACE_HH

#include <ostream>
#include <vector>

#include "isa/instruction.hh"

namespace ascend {
namespace obs {

/** One executed instruction. */
struct PipeTraceEvent
{
    isa::Pipe pipe;
    Cycles start;
    Cycles duration;
    const char *tag; ///< static label from the compiler; may be null
};

/**
 * Event collector + Chrome JSON writer for one simulated program.
 */
class PipeTrace
{
  public:
    void
    add(isa::Pipe pipe, Cycles start, Cycles duration, const char *tag)
    {
        events_.push_back(PipeTraceEvent{pipe, start, duration, tag});
    }

    const std::vector<PipeTraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /**
     * Write Chrome trace-event JSON: one thread per pipe, one
     * complete ("X") event per instruction, timestamps in cycles
     * (microseconds field reused as cycles).
     */
    void writeChromeJson(std::ostream &os) const;

    /** Busy cycles recorded for @p pipe. */
    Cycles busyCycles(isa::Pipe pipe) const;

  private:
    std::vector<PipeTraceEvent> events_;
};

} // namespace obs
} // namespace ascend

#endif // ASCEND_OBS_PIPE_TRACE_HH
