/**
 * @file
 * Multi-level scheduling demo (paper Section 5.2 / Fig. 17): two
 * applications compiled to streams of tasks, their blocks
 * list-scheduled across the cores of one SoC. Shows app-level
 * concurrency, stream ordering, and block-level parallelism — the
 * hierarchy the Ascend software stack exposes.
 */

#include <iostream>

#include "common/table.hh"
#include "compiler/graph_engine.hh"
#include "model/zoo.hh"

using namespace ascend;

int
main()
{
    runtime::SimSession session(
        arch::makeCoreConfig(arch::CoreVersion::Std));

    // App 1: a surveillance service running ResNet50 per camera.
    // App 2: a tracking service running MobileNetV2.
    compiler::App surveillance;
    surveillance.name = "surveillance";
    surveillance.streams.push_back(compiler::compileToStream(
        session, model::zoo::resnet50(1), /*max_blocks=*/4));

    compiler::App tracking;
    tracking.name = "tracking";
    tracking.streams.push_back(compiler::compileToStream(
        session, model::zoo::mobilenetV2(1), /*max_blocks=*/4));

    std::cout << "=== multi-level scheduling on an 8-core SoC ===\n";
    std::cout << "surveillance: "
              << surveillance.streams[0].tasks.size()
              << " tasks, tracking: "
              << tracking.streams[0].tasks.size() << " tasks\n\n";

    TextTable t("app placement strategies");
    t.header({"configuration", "makespan (kcycles)", "core util %",
              "surveillance finish", "tracking finish"});

    auto report = [&](const char *name,
                      const std::vector<compiler::App> &apps,
                      unsigned cores) {
        const auto r = compiler::schedule(apps, cores);
        std::vector<std::string> row = {
            name, TextTable::num(r.makespan / 1000.0, 0),
            TextTable::num(100 * r.avgCoreUtilization, 1)};
        for (std::size_t a = 0; a < 2; ++a)
            row.push_back(a < r.appFinish.size()
                              ? TextTable::num(r.appFinish[a] / 1000.0, 0)
                              : std::string("-"));
        t.row(row);
    };

    // Serial: one app at a time on the full SoC.
    {
        const auto r1 = compiler::schedule({surveillance}, 8);
        const auto r2 = compiler::schedule({tracking}, 8);
        t.row({"serial (one app at a time)",
               TextTable::num((r1.makespan + r2.makespan) / 1000.0, 0),
               "-", TextTable::num(r1.makespan / 1000.0, 0),
               TextTable::num((r1.makespan + r2.makespan) / 1000.0, 0)});
    }
    // Concurrent: both apps share the task scheduler.
    report("concurrent (shared scheduler)", {surveillance, tracking}, 8);

    t.print(std::cout);
    std::cout << "Running both apps through the task scheduler "
                 "overlaps their streams across cores\nand shortens the "
                 "combined makespan — the Section 5.2 hierarchy at "
                 "work.\n";
    return 0;
}
