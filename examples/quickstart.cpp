/**
 * @file
 * Quickstart: compile a small network for two Ascend cores and print
 * per-layer timing, cube/vector balance, and bandwidth statistics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <fstream>
#include <iostream>

#include "common/table.hh"
#include "core/trace.hh"
#include "model/zoo.hh"
#include "runtime/sim_session.hh"

using namespace ascend;

namespace {

void
profileNetwork(const arch::CoreConfig &config, const model::Network &net)
{
    runtime::SimSession session(config);
    const auto runs = session.runInference(net);
    const auto groups = runtime::fusionGroups(runs);

    TextTable table(net.name + " on " + config.name);
    table.header({"operator", "cycles", "cube%", "vec%", "cube/vec",
                  "L1 rd bits/cy", "GFLOPs"});
    Cycles total = 0;
    for (const auto &g : groups) {
        total += g.totalCycles;
        table.row({g.name,
                   TextTable::num(std::uint64_t(g.totalCycles)),
                   TextTable::num(100.0 * g.cubeBusy / g.totalCycles, 1),
                   TextTable::num(100.0 * g.vectorBusy / g.totalCycles, 1),
                   TextTable::num(g.cubeVectorRatio(), 2),
                   TextTable::num(g.l1ReadBitsPerCycle(), 0),
                   TextTable::num(g.flops / 1e9, 3)});
    }
    table.print(std::cout);

    const double ms = double(total) / (config.clockGhz * 1e6);
    std::cout << net.name << ": " << total << " cycles = " << ms
              << " ms at " << config.clockGhz << " GHz\n\n";
}

} // anonymous namespace

int
main()
{
    // A small always-on CNN on the IoT-class core...
    profileNetwork(arch::makeCoreConfig(arch::CoreVersion::Tiny),
                   model::zoo::gestureNet(1));

    // ...and MobileNetV2 on the smartphone-class core.
    profileNetwork(arch::makeCoreConfig(arch::CoreVersion::Lite),
                   model::zoo::mobilenetV2(1));

    // Bonus: dump a Chrome trace of one convolution so the six-pipe
    // overlap (paper Fig. 3) can be inspected in chrome://tracing.
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    compiler::LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    core::Trace trace;
    sim.run(lc.compile(model::Layer::conv2d("conv", 1, 32, 56, 56, 64,
                                            3, 1, 1)),
            &trace);
    std::ofstream out("quickstart_trace.json");
    trace.writeChromeJson(out);
    std::cout << "wrote quickstart_trace.json (" << trace.size()
              << " events) - open in chrome://tracing\n";
    return 0;
}
