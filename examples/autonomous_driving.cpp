/**
 * @file
 * Autonomous-driving scenario (paper Section 3.3): an Ascend 610
 * running a multi-model perception stack per camera frame, with DVPP
 * pre-processing, int8 inference, and MPAM protecting the
 * latency-critical model from bulk interference.
 */

#include <iostream>

#include "common/table.hh"
#include "model/zoo.hh"
#include "soc/auto_soc.hh"

using namespace ascend;

int
main()
{
    soc::AutoSoc soc610;
    std::cout << "=== Ascend 610 autonomous-driving SoC ===\n"
              << "peak: "
              << TextTable::num(soc610.peakOpsInt8() / 1e12, 0)
              << " TOPS int8 / "
              << TextTable::num(soc610.peakOpsInt4() / 1e12, 0)
              << " TOPS int4 across " << soc610.config().aiCores
              << " cores\n\n";

    // Perception stack: detector + two trackers + lane model, all
    // int8, running concurrently on separate cores each frame.
    const auto detector = model::zoo::resnet50(1, DataType::Int8);
    const auto tracker = model::zoo::mobilenetV2(1, DataType::Int8);
    const auto lane = model::zoo::gestureNet(1); // small int8 CNN

    TextTable t("per-frame perception pipeline");
    t.header({"stage", "latency (ms)"});
    t.row({"DVPP pre-processing (resize + stitch)",
           TextTable::num(soc610.config().dvppFrameSeconds * 1e3, 2)});
    const double frame = soc610.frameLatencySeconds(
        {&detector, &tracker, &tracker, &lane});
    t.row({"multi-model inference (4 nets, 1/core)",
           TextTable::num((frame - soc610.config().dvppFrameSeconds) *
                              1e3, 2)});
    t.row({"end-to-end frame", TextTable::num(frame * 1e3, 2)});
    t.print(std::cout);
    std::cout << "sustained "
              << TextTable::num(1.0 / frame, 0)
              << " fps with one frame in flight\n\n";

    // Real-time protection: the detector's working set must survive
    // the mapping/SLAM tasks' bulk streaming (MPAM, Section 3.3).
    std::cout << "=== MPAM protection for the critical model ===\n";
    TextTable q;
    q.header({"configuration", "critical LLC hit %",
              "avg memory latency (ns)"});
    const auto off = soc610.qosExperiment(0);
    const auto on = soc610.qosExperiment(4);
    q.row({"shared LLC (MPAM off)",
           TextTable::num(100 * off.criticalHitRate, 1),
           TextTable::num(off.criticalAvgLatencyNs, 1)});
    q.row({"4 ways reserved (MPAM on)",
           TextTable::num(100 * on.criticalHitRate, 1),
           TextTable::num(on.criticalAvgLatencyNs, 1)});
    q.print(std::cout);

    const double worst_case_factor =
        off.criticalAvgLatencyNs / on.criticalAvgLatencyNs;
    std::cout << "MPAM cuts the critical model's memory latency "
              << TextTable::num(worst_case_factor, 1)
              << "x under interference, which is what keeps the "
                 "sensing->decision deadline.\n";
    return 0;
}
