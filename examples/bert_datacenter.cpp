/**
 * @file
 * Data-center scenario: BERT-Large on Ascend-Max cores, the Ascend
 * 910 SoC, and a multi-server cluster — the "smart cloud" end of the
 * paper's Table 1 spectrum.
 *
 * Walks the full public API surface top-down:
 *   1. profile one encoder on a single core (cube/vector balance),
 *   2. run a training step on the 32-core SoC with the LLC/HBM
 *      memory system,
 *   3. scale the job across servers with hierarchical allreduce.
 */

#include <iostream>

#include "cluster/collective.hh"
#include "common/table.hh"
#include "model/zoo.hh"
#include "runtime/sim_session.hh"
#include "soc/training_soc.hh"

using namespace ascend;

int
main()
{
    // 1. One encoder layer on one Ascend-Max core.
    const auto core_cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    runtime::SimSession session(core_cfg);
    const auto one_layer =
        model::zoo::bert("bert_encoder", 1, 384, 1024, 1, 16, 4096);
    const auto runs = session.runInference(one_layer);

    std::cout << "=== one BERT-Large encoder layer on "
              << core_cfg.name << " ===\n";
    TextTable t;
    t.header({"operator", "cycles", "cube util %", "vector util %"});
    for (const auto &g : runtime::fusionGroups(runs)) {
        t.row({g.name, TextTable::num(std::uint64_t(g.totalCycles)),
               TextTable::num(100.0 * g.cubeBusy / g.totalCycles, 1),
               TextTable::num(100.0 * g.vectorBusy / g.totalCycles, 1)});
    }
    t.print(std::cout);

    // 2. A full training step on the Ascend 910 SoC.
    soc::TrainingSoc soc910;
    const auto per_core = model::zoo::bertLarge(2, 128);
    const auto step = soc910.trainStep(per_core);
    const unsigned chip_batch = 2 * soc910.config().aiCores;
    std::cout << "\n=== BERT-Large training step on Ascend 910 ===\n"
              << "batch " << chip_batch << ", step "
              << TextTable::num(step.seconds * 1e3, 2) << " ms, "
              << TextTable::num(step.achievedFlops() / 1e12, 1)
              << " TFLOPS achieved of "
              << TextTable::num(soc910.peakFlopsFp16() / 1e12, 0)
              << " peak, LLC hit rate "
              << TextTable::num(100 * step.llcHitRate(), 1) << "%\n";

    // 3. Scale out across servers.
    cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.stepSecondsPerChip = step.seconds;
    job.gradientBytes = per_core.parameterBytes();
    job.samplesPerChipStep = chip_batch;

    std::cout << "\n=== cluster scale-out ===\n";
    TextTable s;
    s.header({"chips", "sequences/s", "scaling eff %"});
    for (unsigned chips : {1u, 8u, 64u, 512u}) {
        s.row({TextTable::num(std::uint64_t(chips)),
               TextTable::num(cluster::throughputSamplesPerSec(job, cl,
                                                               chips), 0),
               TextTable::num(100 * cluster::scalingEfficiency(job, cl,
                                                               chips),
                              1)});
    }
    s.print(std::cout);
    return 0;
}
