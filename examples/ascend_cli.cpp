/**
 * @file
 * Command-line driver for the simulator.
 *
 * Usage:
 *   ascend_cli [--core tiny|lite|mini|std|max|nextgen]
 *              [--net NAME] [--batch N] [--list]
 *              [--profile] [--ratios] [--train]
 *              [--trace FILE.json] [--disasm LAYER]
 *              [--density D [--structured]]
 *              [--config FILE] [--dump-config]
 *
 * Examples:
 *   ascend_cli --core lite --net mobilenet_v2 --ratios
 *   ascend_cli --core max --net bert_base --batch 2 --train --profile
 *   ascend_cli --core tiny --net gesture_net --trace t.json
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "arch/config_io.hh"
#include "common/error.hh"
#include "common/table.hh"
#include "runtime/sim_session.hh"
#include "core/trace.hh"
#include "isa/verify.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

struct Options
{
    std::string core = "max";
    std::string net = "resnet50";
    unsigned batch = 1;
    bool list = false;
    bool profile = false;
    bool ratios = false;
    bool train = false;
    std::string traceFile;
    std::string disasmLayer;
    double density = 1.0;
    bool structured = false;
    std::string configFile;
    bool dumpConfig = false;
};

arch::CoreConfig
coreFor(const std::string &name)
{
    if (name == "tiny")
        return arch::makeCoreConfig(arch::CoreVersion::Tiny);
    if (name == "lite")
        return arch::makeCoreConfig(arch::CoreVersion::Lite);
    if (name == "mini")
        return arch::makeCoreConfig(arch::CoreVersion::Mini);
    if (name == "std")
        return arch::makeCoreConfig(arch::CoreVersion::Std);
    if (name == "max")
        return arch::makeCoreConfig(arch::CoreVersion::Max);
    if (name == "nextgen")
        return arch::makeNextGenCoreConfig();
    fatal("unknown core '%s' (tiny|lite|mini|std|max|nextgen)",
          name.c_str());
}

model::Network
netFor(const std::string &name, unsigned batch, DataType dt)
{
    using namespace model::zoo;
    if (name == "resnet50")
        return resnet50(batch, dt);
    if (name == "mobilenet_v2")
        return mobilenetV2(batch, dt);
    if (name == "vgg16")
        return vgg16(batch, dt);
    if (name == "bert_base")
        return bertBase(batch, 128, dt);
    if (name == "bert_large")
        return bertLarge(batch, 128, dt);
    if (name == "gesture_net")
        return gestureNet(batch);
    if (name == "mask_rcnn")
        return maskRcnn(batch, dt);
    if (name == "wide_and_deep")
        return wideDeep(batch, dt);
    if (name == "lstm")
        return lstm(batch, 32, 512, 1024, 2, dt);
    if (name == "siamese_tracker")
        return siameseTracker(batch, dt);
    if (name == "pointnet")
        return pointNet(batch, 1024, dt);
    if (name == "slam_frontend")
        return slamFrontend(2048, dt);
    fatal("unknown network '%s' (try --list)", name.c_str());
}

void
listNetworks()
{
    std::cout << "cores:    tiny lite mini std max nextgen\n"
              << "networks: resnet50 mobilenet_v2 vgg16 bert_base "
                 "bert_large gesture_net\n"
              << "          mask_rcnn wide_and_deep lstm "
                 "siamese_tracker pointnet slam_frontend\n";
}

Options
parse(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            fatal("%s needs a value", flag);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--core")
            opt.core = need(i, "--core");
        else if (a == "--net")
            opt.net = need(i, "--net");
        else if (a == "--batch")
            opt.batch = unsigned(std::stoul(need(i, "--batch")));
        else if (a == "--list")
            opt.list = true;
        else if (a == "--profile")
            opt.profile = true;
        else if (a == "--ratios")
            opt.ratios = true;
        else if (a == "--train")
            opt.train = true;
        else if (a == "--trace")
            opt.traceFile = need(i, "--trace");
        else if (a == "--disasm")
            opt.disasmLayer = need(i, "--disasm");
        else if (a == "--density")
            opt.density = std::stod(need(i, "--density"));
        else if (a == "--structured")
            opt.structured = true;
        else if (a == "--config")
            opt.configFile = need(i, "--config");
        else if (a == "--dump-config")
            opt.dumpConfig = true;
        else if (a == "--help" || a == "-h") {
            listNetworks();
            std::exit(0);
        } else {
            fatal("unknown flag '%s' (try --help)", a.c_str());
        }
    }
    return opt;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    if (opt.list) {
        listNetworks();
        return 0;
    }

    auto cfg = coreFor(opt.core);
    if (!opt.configFile.empty()) {
        std::ifstream in(opt.configFile);
        if (!in)
            fatal("cannot open config file '%s'",
                  opt.configFile.c_str());
        try {
            cfg = arch::readConfig(in, cfg);
        } catch (const Error &e) {
            fatal("%s: %s", opt.configFile.c_str(), e.what());
        }
    }
    if (opt.dumpConfig) {
        arch::writeConfig(cfg, std::cout);
        return 0;
    }
    const DataType dt =
        cfg.supportsFp16 ? DataType::Fp16 : DataType::Int8;
    const auto net = netFor(opt.net, opt.batch, dt);

    compiler::CompileOptions copt;
    copt.sparsity.weightDensity = opt.density;
    copt.sparsity.structured = opt.structured;
    runtime::SimSession session(cfg, copt);

    std::cout << net.name << " (batch " << opt.batch << ", "
              << toString(dt) << ") on " << cfg.name << "\n";

    if (!opt.disasmLayer.empty()) {
        compiler::LayerCompiler lc(cfg, copt);
        for (const auto &layer : net.layers) {
            if (layer.name != opt.disasmLayer)
                continue;
            const auto prog = lc.compile(layer);
            const auto issues = isa::verifyProgram(prog);
            std::cout << isa::disassemble(prog, 48);
            std::cout << (issues.empty() ? "; verifier: clean\n"
                                         : "; verifier: ISSUES\n");
            return 0;
        }
        fatal("no layer named '%s' in %s", opt.disasmLayer.c_str(),
              net.name.c_str());
    }

    if (!opt.traceFile.empty()) {
        compiler::LayerCompiler lc(cfg, copt);
        core::CoreSim sim(cfg);
        core::Trace trace;
        for (const auto &layer : net.layers)
            sim.run(lc.compile(layer), &trace);
        std::ofstream out(opt.traceFile);
        trace.writeChromeJson(out);
        std::cout << "wrote " << trace.size() << " events to "
                  << opt.traceFile << "\n";
    }

    const auto runs = session.runInference(net);
    const auto groups = opt.train
        ? runtime::fusionGroupsTraining(session.runTraining(net))
        : runtime::fusionGroups(runs);

    Cycles total = 0;
    for (const auto &g : groups)
        total += g.totalCycles;
    std::cout << (opt.train ? "training step: " : "inference: ")
              << total << " cycles = "
              << TextTable::num(double(total) / (cfg.clockGhz * 1e6), 3)
              << " ms at " << cfg.clockGhz << " GHz\n";

    if (opt.ratios || opt.profile) {
        TextTable t(opt.train ? "per-operator (fwd+bwd)"
                              : "per-operator");
        if (opt.profile)
            t.header({"operator", "cycles", "cube/vec", "cube %",
                      "vec %", "L1 rd bits/cy", "ext bytes"});
        else
            t.header({"operator", "cube/vec"});
        for (const auto &g : groups) {
            if (opt.profile) {
                t.row({g.name,
                       TextTable::num(std::uint64_t(g.totalCycles)),
                       TextTable::num(g.cubeVectorRatio(), 2),
                       TextTable::num(100.0 * g.cubeBusy /
                                          std::max<Cycles>(
                                              1, g.totalCycles), 1),
                       TextTable::num(100.0 * g.vectorBusy /
                                          std::max<Cycles>(
                                              1, g.totalCycles), 1),
                       TextTable::num(g.l1ReadBitsPerCycle(), 0),
                       formatBytes(g.extBytes)});
            } else {
                t.row({g.name, TextTable::num(g.cubeVectorRatio(), 2)});
            }
        }
        t.print(std::cout);
    }
    return 0;
}
