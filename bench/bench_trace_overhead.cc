/**
 * @file
 * Tracer overhead bench: asserts the obs layer's zero-overhead
 * contract. The record sites stay in the binary even when tracing is
 * off (one relaxed atomic load + predictable branch each), and this
 * bench measures the end-to-end cost of that on the core-sim hot
 * loop:
 *
 *  - T_base: tracing never activated in this process;
 *  - T_on:   tracing active to a file (informational — this path is
 *            allowed to cost whatever buffering costs);
 *  - T_off:  after stop(), i.e. the disabled path again.
 *
 * The assertion is min-of-N T_off <= 1.05 x min-of-N T_base: if the
 * disabled path ever grows a lock, an allocation, or a cache-hostile
 * check, this bench fails (exit 1) and CI goes red. Min-of-N makes
 * the comparison robust to scheduler noise; the paper-table benches
 * depend on the simulator staying this fast.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "compiler/layer_compiler.hh"
#include "core/core_sim.hh"
#include "model/layer.hh"
#include "obs/tracer.hh"

using namespace ascend;

namespace {

/** Seconds to run @p iters simulations of @p prog. */
double
timeBlock(core::CoreSim &sim, const isa::Program &prog, int iters)
{
    using clock = std::chrono::steady_clock;
    std::uint64_t acc = 0;
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i)
        acc += sim.run(prog).totalCycles;
    const auto t1 = clock::now();
    // Keep the accumulator observable so the loop cannot fold away.
    if (acc == 0)
        std::cerr << "";
    return std::chrono::duration<double>(t1 - t0).count();
}

double
minOfReps(core::CoreSim &sim, const isa::Program &prog, int iters,
          int reps)
{
    double best = timeBlock(sim, prog, iters);
    for (int r = 1; r < reps; ++r)
        best = std::min(best, timeBlock(sim, prog, iters));
    return best;
}

} // anonymous namespace

int
main()
{
    // Neutralize any ASCEND_TRACE inherited from the environment so
    // T_base really is the never-activated path.
    obs::Tracer::instance().stop();

    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    compiler::LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const auto prog =
        lc.compile(model::Layer::linear("gemm", 512, 512, 512));

    const int iters = 200; // ~several ms per block
    const int reps = 11;

    minOfReps(sim, prog, iters, 3); // warm caches and frequency

    const double t_base = minOfReps(sim, prog, iters, reps);

    double t_on = 0;
    std::size_t spans = 0;
    if (obs::kTraceCompiledIn) {
        obs::Tracer::instance().start("bench_trace_overhead.json");
        t_on = minOfReps(sim, prog, iters, reps);
        spans = obs::Tracer::instance().spanCount();
        obs::Tracer::instance().stop();
        std::remove("bench_trace_overhead.json");
    }

    const double t_off = minOfReps(sim, prog, iters, reps);

    bench::banner("Tracer overhead (obs zero-overhead contract)");
    TextTable table("min-of-" + std::to_string(reps) + " block times, " +
                    std::to_string(iters) + " sims/block");
    table.header({"mode", "seconds", "vs base"});
    table.row({"base (never on)", TextTable::num(t_base, 4), "1.00"});
    if (obs::kTraceCompiledIn)
        table.row({"tracing on", TextTable::num(t_on, 4),
                   TextTable::num(t_on / t_base, 2)});
    table.row({"off after stop", TextTable::num(t_off, 4),
               TextTable::num(t_off / t_base, 2)});
    table.print(std::cout);
    if (obs::kTraceCompiledIn)
        std::cout << spans << " deduplicated spans recorded while on\n";

    const double limit = 1.05;
    if (t_off > t_base * limit) {
        std::cerr << "FAIL: disabled-tracing overhead "
                  << (t_off / t_base - 1.0) * 100.0 << "% exceeds "
                  << (limit - 1.0) * 100.0 << "% budget\n";
        return 1;
    }
    std::cout << "disabled-tracing overhead within "
              << (limit - 1.0) * 100.0 << "% budget\n";
    return 0;
}
