/**
 * @file
 * Section 4.2 / Fig. 15: Ascend 910 server and cluster scaling.
 * Eight chips per server (two HCCS groups bridged by PCIe), up to 256
 * servers in a fat-tree at 100 Gbps, 512 PFLOPS peak at 2048 chips.
 * Data-parallel ResNet50 training scaling with hierarchical gradient
 * allreduce, ending with the ImageNet time-to-train estimate the
 * paper headlines (sub-2-minute on the 2048-chip cluster).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "cluster/collective.hh"
#include "model/zoo.hh"
#include "soc/training_soc.hh"

using namespace ascend;

int
main()
{
    soc::TrainingSoc soc910;
    const unsigned per_core_batch = 8;
    const auto per_core_net = model::zoo::resnet50(per_core_batch);
    const auto step = soc910.trainStep(per_core_net);
    const unsigned batch_per_chip =
        per_core_batch * soc910.config().aiCores;

    cluster::ClusterConfig cl; // 256 servers x 8 chips
    cluster::TrainingJob job;
    job.stepSecondsPerChip = step.seconds;
    job.gradientBytes = per_core_net.parameterBytes(); // fp16 grads
    job.samplesPerChipStep = batch_per_chip;

    bench::banner("Section 4.2: Ascend 910 cluster scaling "
                  "(ResNet50, data parallel)");
    std::cout << "cluster peak: "
              << TextTable::num(soc910.peakFlopsFp16() *
                                    cl.totalChips() / 1e15, 0)
              << " PFLOPS fp16 at " << cl.totalChips()
              << " chips (paper: 512 PFLOPS)\n";

    TextTable t("scaling");
    t.header({"chips", "step (ms)", "img/s", "scaling eff %",
              "allreduce exposed (ms)"});
    for (unsigned chips : {1u, 2u, 4u, 8u, 64u, 256u, 1024u, 2048u}) {
        const double s = cluster::stepSeconds(job, cl, chips);
        t.row({TextTable::num(std::uint64_t(chips)),
               TextTable::num(s * 1e3, 2),
               TextTable::num(cluster::throughputSamplesPerSec(job, cl,
                                                               chips), 0),
               TextTable::num(100 * cluster::scalingEfficiency(job, cl,
                                                               chips), 1),
               TextTable::num((s - job.stepSecondsPerChip) * 1e3, 2)});
    }
    t.print(std::cout);

    // Time-to-train: MLPerf-closed ResNet50 converges in ~41 epochs
    // of 1.281M images.
    const double imgs = 1.281e6;
    const double epochs = 41;
    const double rate_256 =
        cluster::throughputSamplesPerSec(job, cl, 256);
    const double rate_2048 =
        cluster::throughputSamplesPerSec(job, cl, 2048);
    std::cout << "time-to-train (41 epochs): 256 chips: "
              << TextTable::num(imgs * epochs / rate_256, 0)
              << " s (paper: <83 s with full-stack tuning), 2048 chips: "
              << TextTable::num(imgs * epochs / rate_2048, 0) << " s\n";

    // Hierarchical allreduce latency decomposition for one gradient.
    bench::banner("Hierarchical allreduce of one ResNet50 gradient "
                  "(51 MB fp16)");
    TextTable a("allreduce");
    a.header({"scope", "seconds"});
    a.row({"intra-server (8 chips, HCCS+PCIe)",
           TextTable::num(cluster::serverAllreduceSeconds(
                              cl.server, job.gradientBytes) * 1e3, 3) +
               " ms"});
    a.row({"full cluster (2048 chips)",
           TextTable::num(cluster::hierarchicalAllreduceSeconds(
                              cl, job.gradientBytes) * 1e3, 3) +
               " ms"});
    a.print(std::cout);

    // Collective-algorithm comparison across the fat-tree.
    bench::banner("Allreduce algorithm comparison (256 servers, "
                  "100 Gbps)");
    TextTable c("algorithms");
    c.header({"message", "ring", "halving-doubling", "tree"});
    for (Bytes msg : {Bytes(64) * 1024, Bytes(1) << 20, Bytes(51) << 20,
                      Bytes(1) << 30}) {
        std::vector<std::string> row = {formatBytes(msg)};
        for (auto algo : {cluster::CollectiveAlgo::Ring,
                          cluster::CollectiveAlgo::HalvingDoubling,
                          cluster::CollectiveAlgo::Tree}) {
            row.push_back(TextTable::num(
                              cluster::allreduceAlgoSeconds(
                                  algo, msg, cl.servers,
                                  cl.netBytesPerSec, cl.netLatencySec) *
                                  1e3, 2) + " ms");
        }
        c.row(row);
    }
    c.print(std::cout);
    std::cout << "ring is bandwidth-optimal but latency-heavy at 256 "
                 "endpoints; halving-doubling\nwins for the gradient "
                 "sizes ResNet50/BERT ship.\n";
    return 0;
}
