/**
 * @file
 * Table 8: mobile AI core PPA — the Kirin 990 5G NPU (2x Ascend-Lite
 * + 1x Ascend-Tiny) against the published competitor numbers, with
 * our modelled peak TOPS, TOPS/W, NPU area and MobileNetV2 batch-1
 * latency.
 *
 * Expected shape (paper): ~6.9 TOPS peak, ~4.6 TOPS/W, ~4 mm^2, and
 * the fastest MobileNetV2 single-image latency of the field (5.2 ms).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "compiler/layer_compiler.hh"
#include "isa/encoding.hh"
#include "soc/dvfs.hh"
#include "model/zoo.hh"
#include "soc/mobile_soc.hh"

using namespace ascend;

int
main()
{
    soc::MobileSoc kirin;

    const auto mobilenet = model::zoo::mobilenetV2(1);
    const double mn_ms = kirin.liteLatencySeconds(mobilenet) * 1e3;
    const auto gesture = model::zoo::gestureNet(1);
    const double gesture_ms = kirin.tinyLatencySeconds(gesture) * 1e3;

    bench::banner("Table 8: mobile AI core PPA");
    TextTable t("modelled Kirin 990-5G | published field");
    t.header({"metric", "modelled", "paper Kirin", "SD865", "Dim1000",
              "Exynos9820"});
    t.row({"Peak perf (TOPS int8)",
           TextTable::num(kirin.peakOpsInt8() / 1e12, 2), "6.88", "8",
           "4.5", "2.1-6.9"});
    t.row({"Power efficiency (TOPS/W)",
           TextTable::num(kirin.powerEfficiency(), 2), "4.6", "-",
           "3.4-6.8", "3.6-11.5"});
    t.row({"NPU area (mm2, 7nm)",
           TextTable::num(kirin.npuAreaMm2(), 2), "4", "2.4*", "2.68*",
           "5.5 (8nm)"});
    t.row({"MobileNetV2 (ms/image, fp16)",
           TextTable::num(mn_ms, 1), "5.2", "15", "7", "15"});
    t.print(std::cout);

    std::cout << "Always-on gesture NN on Ascend-Tiny: "
              << TextTable::num(gesture_ms, 3) << " ms/frame at ~"
              << TextTable::num(kirin.config().tinyTypicalWatts * 1e3, 0)
              << " mW budget\n";

    // Big-little concurrency (Section 3.2): photo-scene detection on
    // the Lite pair while the always-on net keeps running on Tiny.
    const double makespan =
        kirin.bigLittleMakespan(model::zoo::mobilenetV2(2), gesture) * 1e3;
    std::cout << "Big-little: MobileNetV2 b=2 on 2x Lite + gesture on "
                 "Tiny completes in "
              << TextTable::num(makespan, 1) << " ms\n";

    // DVFS (Section 3.2): "the working voltage can change dynamically
    // according to real-time workload intensity."
    bench::banner("Section 3.2: DVFS ladder for MobileNetV2 b=1");
    const auto table = soc::DvfsTable::mobileNpu();
    TextTable d("operating points");
    d.header({"point", "freq (GHz)", "latency (ms)", "rel. energy",
              "rel. power"});
    for (const auto &opp : table.points()) {
        d.row({opp.name, TextTable::num(opp.freqGhz, 2),
               TextTable::num(table.latencyAt(opp, mn_ms / 1e3) * 1e3, 1),
               TextTable::num(table.relativeEnergyAt(opp), 2),
               TextTable::num(opp.relativePower(table.nominal()), 2)});
    }
    d.print(std::cout);
    const auto &pick_30fps = table.pick(mn_ms / 1e3, 1.0 / 30.0);
    std::cout << "governor pick for a 30 fps deadline: " << pick_30fps.name
              << " ("
              << TextTable::num(100 * (1 - table.relativeEnergyAt(
                                               pick_30fps)), 0)
              << "% energy saved vs standard)\n";

    // Instruction compression (Section 3.2): "used in the Ascend-Lite
    // core to reduce the bandwidth pressure on the NoC."
    bench::banner("Section 3.2: instruction compression on Ascend-Lite");
    compiler::LayerCompiler lc(kirin.liteConfig());
    TextTable ic("instruction-stream sizes per operator");
    ic.header({"operator", "instrs", "raw", "compressed", "ratio"});
    Bytes raw_total = 0, comp_total = 0;
    for (const auto &layer :
         {model::Layer::conv2d("block2.expand", 1, 16, 112, 112, 96,
                               1, 1, 0),
          model::Layer::depthwiseConv2d("block2.dw", 1, 96, 112, 112,
                                        3, 2, 1),
          model::Layer::linear("fc", 1, 1280, 1000)}) {
        const auto prog = lc.compile(layer);
        const Bytes raw = isa::encodedBytes(prog);
        const Bytes comp = isa::compressedBytes(prog);
        raw_total += raw;
        comp_total += comp;
        ic.row({layer.name, TextTable::num(std::uint64_t(prog.size())),
                formatBytes(raw), formatBytes(comp),
                TextTable::num(double(comp) / raw, 2)});
    }
    ic.print(std::cout);
    std::cout << "aggregate NoC instruction-fetch traffic reduced "
              << TextTable::num(double(raw_total) / comp_total, 1)
              << "x by the shape-dictionary compressor\n";
    return 0;
}
