/**
 * @file
 * Section 5.1: Auto Tiling. The production stack searches the
 * legitimate mapping space (with RL); this bench runs the exhaustive
 * search on representative layers of each core's flagship network
 * and reports how much the searched tiling gains over the one-shot
 * heuristic — plus the Section 2.3 design-space sweep over L0 sizes
 * showing the shipped configuration at the knee.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "compiler/autotiler.hh"
#include "model/zoo.hh"

using namespace ascend;

int
main()
{
    bench::banner("Section 5.1: Auto Tiling search vs heuristic");
    struct Case
    {
        arch::CoreVersion core;
        model::Layer layer;
    };
    const std::vector<Case> cases = {
        {arch::CoreVersion::Max,
         model::Layer::linear("bert.ffn1", 384, 1024, 4096)},
        {arch::CoreVersion::Max,
         model::Layer::conv2d("res3.conv2", 1, 128, 28, 28, 128,
                              3, 1, 1)},
        {arch::CoreVersion::Lite,
         model::Layer::conv2d("mnv2.expand", 1, 24, 56, 56, 144,
                              1, 1, 0)},
        {arch::CoreVersion::Tiny,
         model::Layer::conv2d("gesture.conv3", 1, 16, 48, 48, 32,
                              3, 2, 1, DataType::Int8)},
    };
    // Each exhaustive search is independent (its own AutoTiler);
    // run them through the pool and print rows in case order.
    const auto results =
        runtime::parallelMap(cases, [](const Case &c) {
            compiler::AutoTiler tiler(arch::makeCoreConfig(c.core));
            return tiler.search(c.layer);
        });
    TextTable t("per-layer search");
    t.header({"core", "layer", "heuristic tile", "cycles", "best tile",
              "cycles", "gain", "tried"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const Case &c = cases[i];
        const auto &r = results[i];
        auto fmt = [](const compiler::GemmTile &g) {
            return std::to_string(g.mt) + "x" + std::to_string(g.kt) +
                   "x" + std::to_string(g.nt);
        };
        t.row({arch::toString(c.core), c.layer.name, fmt(r.heuristic),
               TextTable::num(std::uint64_t(r.heuristicCycles)),
               fmt(r.best), TextTable::num(std::uint64_t(r.bestCycles)),
               TextTable::num(r.speedupOverHeuristic(), 2) + "x",
               TextTable::num(std::uint64_t(r.candidatesTried))});
    }
    t.print(std::cout);
    std::cout << "The searched mapping never loses to the heuristic "
                 "(it includes it) and recovers\nthe cases where the "
                 "one-shot rule picks a poor loop order.\n";

    // Section 2.3: micro-architecture exploration — L0 size sweep,
    // one independent core config per point.
    bench::banner("Section 2.3: design-space sweep (L0 capacity, "
                  "ResNet50 on Ascend)");
    TextTable d("L0A/L0B capacity sweep");
    d.header({"L0A/L0B (KiB)", "total cycles", "vs shipped 64 KiB"});
    const auto net = model::zoo::resnet50(1);
    const std::vector<Bytes> kibs = {16, 32, 64, 128, 256};
    const auto cycles = runtime::parallelMap(kibs, [&](Bytes kib) {
        auto cfg = arch::makeCoreConfig(arch::CoreVersion::Std);
        cfg.l0aBytes = cfg.l0bBytes = kib * kKiB;
        runtime::SimSession session(cfg);
        return runtime::totalCycles(session.runInference(net));
    });
    const Cycles shipped = cycles[2]; // the 64 KiB point
    for (std::size_t i = 0; i < kibs.size(); ++i) {
        d.row({TextTable::num(std::uint64_t(kibs[i])),
               TextTable::num(std::uint64_t(cycles[i])),
               TextTable::num(double(cycles[i]) / shipped, 3) + "x"});
    }
    d.print(std::cout);
    std::cout << "Below the shipped 64 KiB, tiles shrink and "
                 "per-instruction overheads grow; above\nit, returns "
                 "diminish - the Section 2.3 resource-balance "
                 "principle.\n";
    return 0;
}
