/**
 * @file
 * Fault-tolerance curves for the Section 4.2 cluster at scale: what
 * the 2048-chip training numbers look like once links flap, cores
 * die, and DRAM bits rot. Three sweeps:
 *
 *  1. data-parallel training under link faults — fault rate x
 *     recovery policy x cluster size, reporting degraded throughput,
 *     time-to-completion (or time-to-failure) and retry counts;
 *  2. chip-level degraded execution (soc::runChipSim fault plans) —
 *     makespan stretch from stragglers, transient restarts and
 *     permanent-failure re-dispatch;
 *  3. ECC and checkpoint/restart cost curves for long training runs.
 *
 * Every number is closed-form or event-driven arithmetic over a
 * seeded resilience::FaultSchedule: the output is byte-identical for
 * any ASCEND_THREADS setting (the sweep fans out through
 * runtime::parallelFor with index-ordered rows). `--smoke` runs a
 * reduced grid for CI golden-output comparison.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "cluster/fault_collective.hh"
#include "memory/dram.hh"
#include "resilience/fault_schedule.hh"
#include "resilience/policy.hh"
#include "soc/chip_sim.hh"

using namespace ascend;
using resilience::ChipFaultPlan;
using resilience::CheckpointPolicy;
using resilience::DegradedMode;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using resilience::RetryPolicy;

namespace {

/** One design point of the training sweep. */
struct SweepPoint
{
    unsigned chips = 0;
    double linkDownPerSec = 0;
    DegradedMode mode = DegradedMode::ContinueDegraded;
};

/** A rendered table row, computed in parallel, printed in order. */
using Row = std::vector<std::string>;

void
trainingSweep(bool smoke)
{
    bench::banner("Training under link faults (ResNet50-class job, "
                  "fault rate x policy x cluster size)");

    cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.stepSecondsPerChip = 0.05;
    job.gradientBytes = 51 * kMiB; // fp16 ResNet50 gradient
    job.samplesPerChipStep = 256;
    const unsigned steps = smoke ? 20 : 100;

    const std::vector<unsigned> sizes =
        smoke ? std::vector<unsigned>{8, 256}
              : std::vector<unsigned>{8, 64, 256, 1024, 2048};
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 2.0}
              : std::vector<double>{0.0, 0.5, 2.0, 8.0};
    const std::vector<DegradedMode> modes = {
        DegradedMode::ContinueDegraded, DegradedMode::FailStop};

    std::vector<SweepPoint> grid;
    for (unsigned chips : sizes)
        for (double rate : rates)
            for (DegradedMode mode : modes)
                grid.push_back(SweepPoint{chips, rate, mode});

    std::vector<Row> rows(grid.size());
    runtime::parallelFor(grid.size(), [&](std::size_t i) {
        const SweepPoint &pt = grid[i];
        FaultSpec spec;
        spec.seed = 42;
        spec.links = unsigned(ceilDiv(pt.chips, cl.server.chips));
        spec.horizonSec = 600.0;
        spec.linkDownPerSec = pt.linkDownPerSec;
        spec.linkDegradePerSec = pt.linkDownPerSec / 2;
        const FaultSchedule faults = FaultSchedule::generate(spec);
        const RetryPolicy retry;
        const CheckpointPolicy checkpoint;

        const cluster::TrainingRunResult clean =
            cluster::trainingRunWithFaults(job, cl, pt.chips, steps,
                                           FaultSchedule(), retry,
                                           pt.mode, checkpoint);
        const cluster::TrainingRunResult run =
            cluster::trainingRunWithFaults(job, cl, pt.chips, steps,
                                           faults, retry, pt.mode,
                                           checkpoint);
        const double goodput = run.seconds > 0
            ? double(job.samplesPerChipStep) * pt.chips *
                  run.stepsDone / run.seconds
            : 0.0;
        const double rel = clean.seconds > 0
            ? 100.0 * clean.seconds / std::max(run.seconds, 1e-12)
            : 0.0;
        rows[i] = {TextTable::num(std::uint64_t(pt.chips)),
                   TextTable::num(pt.linkDownPerSec, 1),
                   toString(pt.mode),
                   TextTable::num(std::uint64_t(run.stepsDone)) + "/" +
                       TextTable::num(std::uint64_t(steps)),
                   TextTable::num(run.seconds, 3),
                   TextTable::num(std::uint64_t(run.retries)),
                   TextTable::num(std::uint64_t(run.degradedSteps)),
                   TextTable::num(goodput, 0),
                   run.completed ? TextTable::num(rel, 1) : "failed"};
    });

    TextTable t("training resilience");
    t.header({"chips", "faults/s", "policy", "steps", "seconds",
              "retries", "degraded", "img/s", "eff %"});
    for (const Row &row : rows)
        t.row(row);
    t.print(std::cout);
    std::cout << "eff % = fault-free wall time / achieved wall time; "
                 "FailStop rows that\nexhaust retries report steps "
                 "finished before the abort.\n";
}

void
chipSweep(bool smoke)
{
    bench::banner("Chip-level degraded execution (32-core fluid model)");

    const unsigned cores = 32;
    std::vector<std::vector<soc::CoreTask>> work(cores);
    for (unsigned c = 0; c < cores; ++c)
        for (unsigned k = 0; k < (smoke ? 4u : 8u); ++k)
            work[c].push_back(
                soc::CoreTask{1e-3 * (1 + (c + k) % 4),
                              Bytes((c % 7) + 2 * k + 1) * kMiB});
    const soc::ChipSimResult clean = soc::runChipSim(work, 1.2e12);

    struct Scenario
    {
        const char *name;
        FaultSpec spec;
    };
    std::vector<Scenario> scenarios;
    {
        FaultSpec s;
        s.seed = 7;
        s.cores = cores;
        s.horizonSec = 1.0;
        Scenario straggler{"stragglers 25% @1.5x", s};
        straggler.spec.stragglerFraction = 0.25;
        straggler.spec.stragglerSlowdown = 1.5;
        scenarios.push_back(straggler);
        Scenario transient{"transient 40/core/s", s};
        transient.spec.coreTransientPerSec = 40.0;
        transient.spec.coreRepairSec = 2e-3;
        scenarios.push_back(transient);
        Scenario permanent{"permanent 15/core/s", s};
        permanent.spec.corePermanentPerSec = 15.0;
        scenarios.push_back(permanent);
        Scenario mixed{"all of the above", s};
        mixed.spec.stragglerFraction = 0.25;
        mixed.spec.stragglerSlowdown = 1.5;
        mixed.spec.coreTransientPerSec = 40.0;
        mixed.spec.coreRepairSec = 2e-3;
        mixed.spec.corePermanentPerSec = 15.0;
        scenarios.push_back(mixed);
    }

    std::vector<Row> rows(scenarios.size());
    runtime::parallelFor(scenarios.size(), [&](std::size_t i) {
        const ChipFaultPlan plan = ChipFaultPlan::fromSchedule(
            FaultSchedule::generate(scenarios[i].spec), cores);
        const soc::ChipSimResult r = soc::runChipSim(work, 1.2e12, plan);
        rows[i] = {scenarios[i].name,
                   TextTable::num(r.makespan * 1e3, 3),
                   TextTable::num(r.makespan / clean.makespan, 3),
                   TextTable::num(std::uint64_t(r.coreFailures)),
                   TextTable::num(std::uint64_t(r.reDispatchedTasks)),
                   r.completed ? "yes" : "no"};
    });

    TextTable t("degraded chip execution");
    t.header({"scenario", "makespan (ms)", "stretch", "core faults",
              "re-dispatched", "completed"});
    t.row({"fault-free", TextTable::num(clean.makespan * 1e3, 3),
           TextTable::num(1.0, 3), "0", "0", "yes"});
    for (const Row &row : rows)
        t.row(row);
    t.print(std::cout);
}

void
chipClusterSweep()
{
    bench::banner("Cluster training with simulated chip step time "
                  "(fluid chip sim -> cluster run)");

    // One chip's data-parallel step, as fluid task queues.
    const unsigned cores = 32;
    std::vector<std::vector<soc::CoreTask>> work(cores);
    for (unsigned c = 0; c < cores; ++c)
        for (unsigned k = 0; k < 8; ++k)
            work[c].push_back(
                soc::CoreTask{1e-3 * (1 + (c + k) % 4),
                              Bytes((c % 7) + 2 * k + 1) * kMiB});

    cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    job.samplesPerChipStep = 256;
    const unsigned steps = 100;
    const RetryPolicy retry;
    const CheckpointPolicy checkpoint;

    struct Scenario
    {
        const char *name;
        FaultSpec spec;
    };
    std::vector<Scenario> scenarios;
    {
        FaultSpec s;
        s.seed = 7;
        s.cores = cores;
        s.horizonSec = 1.0;
        scenarios.push_back({"healthy chip", s});
        Scenario straggler{"stragglers 25% @1.5x", s};
        straggler.spec.stragglerFraction = 0.25;
        straggler.spec.stragglerSlowdown = 1.5;
        scenarios.push_back(straggler);
        Scenario permanent{"permanent 15/core/s", s};
        permanent.spec.corePermanentPerSec = 15.0;
        scenarios.push_back(permanent);
    }
    const std::vector<unsigned> sizes = {64, 1024};

    struct Point
    {
        std::size_t scenario;
        unsigned chips;
    };
    std::vector<Point> grid;
    for (std::size_t s = 0; s < scenarios.size(); ++s)
        for (unsigned chips : sizes)
            grid.push_back({s, chips});

    std::vector<Row> rows(grid.size());
    runtime::parallelFor(grid.size(), [&](std::size_t i) {
        const Scenario &sc = scenarios[grid[i].scenario];
        const ChipFaultPlan plan = ChipFaultPlan::fromSchedule(
            FaultSchedule::generate(sc.spec), cores);
        const cluster::ChipTrainingRunResult r =
            cluster::trainingRunWithChipFaults(
                job, cl, grid[i].chips, steps, work, 1.2e12, plan,
                FaultSchedule(), retry, DegradedMode::ContinueDegraded,
                checkpoint);
        rows[i] = {sc.name, TextTable::num(std::uint64_t(grid[i].chips)),
                   TextTable::num(r.stepSecondsPerChip * 1e3, 3),
                   TextTable::num(std::uint64_t(r.run.stepsDone)) + "/" +
                       TextTable::num(std::uint64_t(steps)),
                   TextTable::num(r.run.seconds, 3),
                   r.run.completed ? "yes" : "no"};
    });

    TextTable t("chip-sim-driven training runs");
    t.header({"chip state", "chips", "step/chip (ms)", "steps",
              "seconds", "completed"});
    for (const Row &row : rows)
        t.row(row);
    t.print(std::cout);
    std::cout << "step/chip comes from the fluid chip simulator "
                 "(stragglers and dead cores\nstretch it); the cluster "
                 "run then pays communication on top.\n";
}

void
eccCheckpointCurves(bool smoke)
{
    bench::banner("ECC scrubbing and checkpoint/restart cost");

    memory::DramConfig hbm;
    hbm.ecc.correctablePerGiB = 1e-3;
    hbm.ecc.correctableStallSec = 5e-6;
    hbm.ecc.uncorrectablePerGiB = 1e-9;
    const memory::DramModel dram(hbm);
    TextTable e("ECC on 1.2 TB/s HBM");
    e.header({"transfer", "stream (ms)", "corrections",
              "stall (us)", "overhead %"});
    for (Bytes bytes : {Bytes(1) << 30, Bytes(64) << 30,
                        Bytes(512) << 30}) {
        const double stream = dram.streamTime(bytes);
        const double stall = dram.eccStallTime(bytes);
        e.row({formatBytes(bytes), TextTable::num(stream * 1e3, 3),
               TextTable::num(dram.expectedCorrectable(bytes), 3),
               TextTable::num(stall * 1e6, 3),
               TextTable::num(100.0 * stall / stream, 4)});
    }
    e.print(std::cout);
    std::cout << "uncorrectable @ full bandwidth: "
              << TextTable::num(
                     dram.uncorrectablePerSecAtFullBandwidth() * 3600,
                     4)
              << " events/hour/chip\n";

    const double work = smoke ? 3600.0 : 24 * 3600.0;
    CheckpointPolicy ckpt;
    ckpt.enabled = true;
    ckpt.intervalSec = 600.0;
    ckpt.saveSec = 5.0;
    ckpt.restartSec = 30.0;
    const CheckpointPolicy off;
    TextTable c("checkpoint/restart, " +
                TextTable::num(work / 3600.0, 0) + " h of work");
    c.header({"errors/s", "no ckpt (h)", "ckpt 10min (h)",
              "ckpt wins"});
    for (double rate : {0.0, 1e-5, 1e-4, 1e-3}) {
        const double bare =
            resilience::timeWithCheckpointRestart(work, rate, off);
        const double saved =
            resilience::timeWithCheckpointRestart(work, rate, ckpt);
        c.row({TextTable::num(rate, 5),
               TextTable::num(bare / 3600.0, 3),
               TextTable::num(saved / 3600.0, 3),
               saved < bare ? "yes" : "no"});
    }
    c.print(std::cout);
    std::cout << "with no checkpoints an uncorrectable error forfeits "
                 "half the run on\naverage; the 10-minute cadence caps "
                 "rework at interval/2 + restart.\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string golden;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--golden") == 0 &&
                   i + 1 < argc) {
            golden = argv[++i];
        } else {
            fatal("unknown flag '%s' (--smoke, --golden <file>)",
                  argv[i]);
        }
    }

    // With --golden the bench self-checks its stdout against the
    // checked-in file through bench::checkGolden, so the whitespace
    // normalization lives in exactly one place instead of per-CI-job
    // sed pipelines.
    std::ostringstream captured;
    std::streambuf *const saved =
        golden.empty() ? nullptr : std::cout.rdbuf(captured.rdbuf());

    trainingSweep(smoke);
    chipSweep(smoke);
    // The chip-sim-driven cluster sweep is not part of the golden
    // smoke output (it exists since PR 3); full runs only.
    if (!smoke)
        chipClusterSweep();
    eccCheckpointCurves(smoke);

    if (saved) {
        std::cout.rdbuf(saved);
        std::cout << captured.str();
        if (!bench::checkGolden(captured.str(), golden))
            return 1;
        std::cerr << "golden OK: " << golden << "\n";
    }
    return 0;
}
