/**
 * @file
 * Fault-tolerance curves for the Section 4.2 cluster at scale: what
 * the 2048-chip training numbers look like once links flap, cores
 * die, and DRAM bits rot. Three sweeps:
 *
 *  1. data-parallel training under link faults — fault rate x
 *     recovery policy x cluster size, reporting degraded throughput,
 *     time-to-completion (or time-to-failure) and retry counts;
 *  2. chip-level degraded execution (soc::runChipSim fault plans) —
 *     makespan stretch from stragglers, transient restarts and
 *     permanent-failure re-dispatch;
 *  3. ECC and checkpoint/restart cost curves for long training runs.
 *
 * Every number is closed-form or event-driven arithmetic over a
 * seeded resilience::FaultSchedule: the output is byte-identical for
 * any ASCEND_THREADS setting (the sweep fans out through
 * runtime::parallelFor with index-ordered rows). `--smoke` runs a
 * reduced grid for CI golden-output comparison.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "cluster/elastic_run.hh"
#include "cluster/fault_collective.hh"
#include "memory/dram.hh"
#include "resilience/fault_domain.hh"
#include "resilience/fault_schedule.hh"
#include "resilience/policy.hh"
#include "soc/chip_sim.hh"

using namespace ascend;
using resilience::ChipFaultPlan;
using resilience::CheckpointPolicy;
using resilience::DegradedMode;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using resilience::RetryPolicy;

namespace {

/** One design point of the training sweep. */
struct SweepPoint
{
    unsigned chips = 0;
    double linkDownPerSec = 0;
    DegradedMode mode = DegradedMode::ContinueDegraded;
};

/** A rendered table row, computed in parallel, printed in order. */
using Row = std::vector<std::string>;

void
trainingSweep(bool smoke)
{
    bench::banner("Training under link faults (ResNet50-class job, "
                  "fault rate x policy x cluster size)");

    cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.stepSecondsPerChip = 0.05;
    job.gradientBytes = 51 * kMiB; // fp16 ResNet50 gradient
    job.samplesPerChipStep = 256;
    const unsigned steps = smoke ? 20 : 100;

    const std::vector<unsigned> sizes =
        smoke ? std::vector<unsigned>{8, 256}
              : std::vector<unsigned>{8, 64, 256, 1024, 2048};
    const std::vector<double> rates =
        smoke ? std::vector<double>{0.0, 2.0}
              : std::vector<double>{0.0, 0.5, 2.0, 8.0};
    const std::vector<DegradedMode> modes = {
        DegradedMode::ContinueDegraded, DegradedMode::FailStop};

    std::vector<SweepPoint> grid;
    for (unsigned chips : sizes)
        for (double rate : rates)
            for (DegradedMode mode : modes)
                grid.push_back(SweepPoint{chips, rate, mode});

    std::vector<Row> rows(grid.size());
    runtime::parallelFor(grid.size(), [&](std::size_t i) {
        const SweepPoint &pt = grid[i];
        FaultSpec spec;
        spec.seed = 42;
        spec.links = unsigned(ceilDiv(pt.chips, cl.server.chips));
        spec.horizonSec = 600.0;
        spec.linkDownPerSec = pt.linkDownPerSec;
        spec.linkDegradePerSec = pt.linkDownPerSec / 2;
        const FaultSchedule faults = FaultSchedule::generate(spec);
        // The printed fault axis is whole-schedule events per
        // sim-second — the same unit BENCH_resilience.json reports —
        // not the per-link input rate (which silently excluded the
        // derived degrade stream).
        const double eventsPerSec =
            double(faults.events().size()) / spec.horizonSec;
        const RetryPolicy retry;
        const CheckpointPolicy checkpoint;

        const cluster::TrainingRunResult clean =
            cluster::trainingRunWithFaults(job, cl, pt.chips, steps,
                                           FaultSchedule(), retry,
                                           pt.mode, checkpoint);
        const cluster::TrainingRunResult run =
            cluster::trainingRunWithFaults(job, cl, pt.chips, steps,
                                           faults, retry, pt.mode,
                                           checkpoint);
        const double goodput = run.seconds > 0
            ? double(job.samplesPerChipStep) * pt.chips *
                  run.stepsDone / run.seconds
            : 0.0;
        const double rel = clean.seconds > 0
            ? 100.0 * clean.seconds / std::max(run.seconds, 1e-12)
            : 0.0;
        rows[i] = {TextTable::num(std::uint64_t(pt.chips)),
                   TextTable::num(eventsPerSec, 2),
                   toString(pt.mode),
                   TextTable::num(std::uint64_t(run.stepsDone)) + "/" +
                       TextTable::num(std::uint64_t(steps)),
                   TextTable::num(run.seconds, 3),
                   TextTable::num(std::uint64_t(run.retries)),
                   TextTable::num(std::uint64_t(run.degradedSteps)),
                   TextTable::num(goodput, 0),
                   run.completed ? TextTable::num(rel, 1) : "failed"};
    });

    TextTable t("training resilience");
    t.header({"chips", "events/s", "policy", "steps", "seconds",
              "retries", "degraded", "img/s", "eff %"});
    for (const Row &row : rows)
        t.row(row);
    t.print(std::cout);
    std::cout << "eff % = fault-free wall time / achieved wall time; "
                 "FailStop rows that\nexhaust retries report steps "
                 "finished before the abort.\n";
}

void
chipSweep(bool smoke)
{
    bench::banner("Chip-level degraded execution (32-core fluid model)");

    const unsigned cores = 32;
    std::vector<std::vector<soc::CoreTask>> work(cores);
    for (unsigned c = 0; c < cores; ++c)
        for (unsigned k = 0; k < (smoke ? 4u : 8u); ++k)
            work[c].push_back(
                soc::CoreTask{1e-3 * (1 + (c + k) % 4),
                              Bytes((c % 7) + 2 * k + 1) * kMiB});
    const soc::ChipSimResult clean = soc::runChipSim(work, 1.2e12);

    struct Scenario
    {
        const char *name;
        FaultSpec spec;
    };
    std::vector<Scenario> scenarios;
    {
        FaultSpec s;
        s.seed = 7;
        s.cores = cores;
        s.horizonSec = 1.0;
        Scenario straggler{"stragglers 25% @1.5x", s};
        straggler.spec.stragglerFraction = 0.25;
        straggler.spec.stragglerSlowdown = 1.5;
        scenarios.push_back(straggler);
        Scenario transient{"transient 40/core/s", s};
        transient.spec.coreTransientPerSec = 40.0;
        transient.spec.coreRepairSec = 2e-3;
        scenarios.push_back(transient);
        Scenario permanent{"permanent 15/core/s", s};
        permanent.spec.corePermanentPerSec = 15.0;
        scenarios.push_back(permanent);
        Scenario mixed{"all of the above", s};
        mixed.spec.stragglerFraction = 0.25;
        mixed.spec.stragglerSlowdown = 1.5;
        mixed.spec.coreTransientPerSec = 40.0;
        mixed.spec.coreRepairSec = 2e-3;
        mixed.spec.corePermanentPerSec = 15.0;
        scenarios.push_back(mixed);
    }

    std::vector<Row> rows(scenarios.size());
    runtime::parallelFor(scenarios.size(), [&](std::size_t i) {
        const ChipFaultPlan plan = ChipFaultPlan::fromSchedule(
            FaultSchedule::generate(scenarios[i].spec), cores);
        const soc::ChipSimResult r = soc::runChipSim(work, 1.2e12, plan);
        rows[i] = {scenarios[i].name,
                   TextTable::num(r.makespan * 1e3, 3),
                   TextTable::num(r.makespan / clean.makespan, 3),
                   TextTable::num(std::uint64_t(r.coreFailures)),
                   TextTable::num(std::uint64_t(r.reDispatchedTasks)),
                   r.completed ? "yes" : "no"};
    });

    TextTable t("degraded chip execution");
    t.header({"scenario", "makespan (ms)", "stretch", "core faults",
              "re-dispatched", "completed"});
    t.row({"fault-free", TextTable::num(clean.makespan * 1e3, 3),
           TextTable::num(1.0, 3), "0", "0", "yes"});
    for (const Row &row : rows)
        t.row(row);
    t.print(std::cout);
}

void
chipClusterSweep()
{
    bench::banner("Cluster training with simulated chip step time "
                  "(fluid chip sim -> cluster run)");

    // One chip's data-parallel step, as fluid task queues.
    const unsigned cores = 32;
    std::vector<std::vector<soc::CoreTask>> work(cores);
    for (unsigned c = 0; c < cores; ++c)
        for (unsigned k = 0; k < 8; ++k)
            work[c].push_back(
                soc::CoreTask{1e-3 * (1 + (c + k) % 4),
                              Bytes((c % 7) + 2 * k + 1) * kMiB});

    cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.gradientBytes = 51 * kMiB;
    job.samplesPerChipStep = 256;
    const unsigned steps = 100;
    const RetryPolicy retry;
    const CheckpointPolicy checkpoint;

    struct Scenario
    {
        const char *name;
        FaultSpec spec;
    };
    std::vector<Scenario> scenarios;
    {
        FaultSpec s;
        s.seed = 7;
        s.cores = cores;
        s.horizonSec = 1.0;
        scenarios.push_back({"healthy chip", s});
        Scenario straggler{"stragglers 25% @1.5x", s};
        straggler.spec.stragglerFraction = 0.25;
        straggler.spec.stragglerSlowdown = 1.5;
        scenarios.push_back(straggler);
        Scenario permanent{"permanent 15/core/s", s};
        permanent.spec.corePermanentPerSec = 15.0;
        scenarios.push_back(permanent);
    }
    const std::vector<unsigned> sizes = {64, 1024};

    struct Point
    {
        std::size_t scenario;
        unsigned chips;
    };
    std::vector<Point> grid;
    for (std::size_t s = 0; s < scenarios.size(); ++s)
        for (unsigned chips : sizes)
            grid.push_back({s, chips});

    std::vector<Row> rows(grid.size());
    runtime::parallelFor(grid.size(), [&](std::size_t i) {
        const Scenario &sc = scenarios[grid[i].scenario];
        const ChipFaultPlan plan = ChipFaultPlan::fromSchedule(
            FaultSchedule::generate(sc.spec), cores);
        const cluster::ChipTrainingRunResult r =
            cluster::trainingRunWithChipFaults(
                job, cl, grid[i].chips, steps, work, 1.2e12, plan,
                FaultSchedule(), retry, DegradedMode::ContinueDegraded,
                checkpoint);
        rows[i] = {sc.name, TextTable::num(std::uint64_t(grid[i].chips)),
                   TextTable::num(r.stepSecondsPerChip * 1e3, 3),
                   TextTable::num(std::uint64_t(r.run.stepsDone)) + "/" +
                       TextTable::num(std::uint64_t(steps)),
                   TextTable::num(r.run.seconds, 3),
                   r.run.completed ? "yes" : "no"};
    });

    TextTable t("chip-sim-driven training runs");
    t.header({"chip state", "chips", "step/chip (ms)", "steps",
              "seconds", "completed"});
    for (const Row &row : rows)
        t.row(row);
    t.print(std::cout);
    std::cout << "step/chip comes from the fluid chip simulator "
                 "(stragglers and dead cores\nstretch it); the cluster "
                 "run then pays communication on top.\n";
}

/** One policy's makespan in the elastic comparison. */
struct ElasticPoint
{
    std::string name;
    double seconds = 0;
    unsigned stepsDone = 0;
    bool completed = true;
    /** Whole-schedule fault events per sim-second of its horizon —
     *  the one fault-rate unit stdout and the JSON share. */
    double faultEventsPerSimSec = 0;
    resilience::ElasticCounters counters;
};

/** Events per sim-second of @p faults over its horizon. */
double
eventsPerSimSec(const FaultSchedule &faults)
{
    const double horizon = faults.spec().horizonSec;
    return horizon > 0 ? double(faults.events().size()) / horizon : 0;
}

/**
 * Fault-free vs. penalty-model vs. elastic makespans on one chaotic
 * schedule: the bench trajectory BENCH_resilience.json tracks across
 * PRs. Serial and closed-form — byte-identical at any thread count.
 */
std::vector<ElasticPoint>
elasticSweep(bool smoke)
{
    bench::banner("Elastic recovery vs. penalty-model recovery "
                  "(64 chips, node deaths + ECC + stragglers)");

    cluster::ClusterConfig cl;
    cluster::TrainingJob job;
    job.stepSecondsPerChip = 0.05;
    job.gradientBytes = 51 * kMiB;
    job.samplesPerChipStep = 256;
    const unsigned chips = 64;
    const unsigned steps = smoke ? 20 : 60;
    const RetryPolicy retry;

    FaultSpec spec;
    spec.seed = 42;
    spec.horizonSec = 600.0;
    spec.cores = unsigned(ceilDiv(chips, cl.server.chips));
    spec.links = spec.cores;
    spec.corePermanentPerSec = 0.15;
    spec.linkDownPerSec = 1.0;
    spec.linkDegradePerSec = 0.5;
    spec.eccUncorrectablePerSec = 0.2;
    spec.stragglerFraction = 0.25;
    spec.stragglerSlowdown = 1.6;
    const FaultSchedule faults = FaultSchedule::generate(spec);

    cluster::ElasticOptions elastic;
    elastic.stateBytes = 256 * kMiB;
    elastic.failoverRestartSec = 2.0;
    elastic.reshardRestartSec = 4.0;
    elastic.checkpoint.enabled = true;
    elastic.checkpoint.intervalSec = 1e6; // step cadence drives it
    elastic.checkpoint.saveSec = 0.5;
    elastic.checkpoint.restartSec = 1.0;
    elastic.checkpointEverySteps = 5;
    cluster::ElasticOptions spares = elastic;
    spares.spareNodes = 2;

    std::vector<ElasticPoint> points;
    {
        ElasticPoint p;
        p.name = "fault-free";
        const cluster::ElasticRunResult r = cluster::runElastic(
            job, cl, chips, steps, FaultSchedule(), retry,
            DegradedMode::ContinueDegraded);
        p.seconds = r.seconds;
        p.stepsDone = r.stepsDone;
        p.completed = r.completed;
        p.counters = r.counters;
        points.push_back(p);
    }
    {
        ElasticPoint p;
        p.name = "degraded (penalty model)";
        const cluster::TrainingRunResult r =
            cluster::trainingRunWithFaults(
                job, cl, chips, steps, faults, retry,
                DegradedMode::ContinueDegraded, CheckpointPolicy{},
                spec.eccUncorrectablePerSec);
        p.seconds = r.seconds;
        p.stepsDone = r.stepsDone;
        p.completed = r.completed;
        p.faultEventsPerSimSec = eventsPerSimSec(faults);
        points.push_back(p);
    }
    const std::pair<const char *, const cluster::ElasticOptions *>
        variants[] = {{"elastic (2 spares)", &spares},
                      {"elastic (shrink only)", &elastic}};
    for (const auto &variant : variants) {
        ElasticPoint p;
        p.name = variant.first;
        const cluster::ElasticRunResult r = cluster::runElastic(
            job, cl, chips, steps, faults, retry,
            DegradedMode::ContinueDegraded, *variant.second);
        p.seconds = r.seconds;
        p.stepsDone = r.stepsDone;
        p.completed = r.completed;
        p.faultEventsPerSimSec = eventsPerSimSec(faults);
        p.counters = r.counters;
        points.push_back(p);
    }
    {
        // Domain-correlated schedule: one rack strike kills half the
        // servers at a single instant early in the run. The elastic
        // engine must absorb several simultaneous deaths in one step
        // (spares first, then a shrink for the remainder).
        resilience::CorrelatedFaultSpec cspec;
        cspec.seed = spec.seed;
        cspec.horizonSec = spec.horizonSec;
        cspec.topology.replicas = spec.cores;
        cspec.topology.replicasPerRack =
            std::max(1u, spec.cores / 2);
        cspec.rackStrikeAtSec = 0.5;
        cspec.rackStrikeKind = resilience::FaultKind::CorePermanent;
        const FaultSchedule rack =
            resilience::generateCorrelated(cspec);
        ElasticPoint p;
        p.name = "elastic (rack-correlated)";
        const cluster::ElasticRunResult r = cluster::runElastic(
            job, cl, chips, steps, rack, retry,
            DegradedMode::ContinueDegraded, spares);
        p.seconds = r.seconds;
        p.stepsDone = r.stepsDone;
        p.completed = r.completed;
        p.faultEventsPerSimSec = eventsPerSimSec(rack);
        p.counters = r.counters;
        points.push_back(p);
    }

    TextTable t("elastic vs. penalty recovery");
    t.header({"policy", "events/s", "seconds", "steps", "failovers",
              "shrinks", "rollbacks", "replayed", "speculations",
              "completed"});
    for (const ElasticPoint &p : points)
        t.row({p.name, TextTable::num(p.faultEventsPerSimSec, 2),
               TextTable::num(p.seconds, 3),
               TextTable::num(std::uint64_t(p.stepsDone)) + "/" +
                   TextTable::num(std::uint64_t(steps)),
               TextTable::num(p.counters.failovers),
               TextTable::num(p.counters.shrinks),
               TextTable::num(p.counters.rollbacks),
               TextTable::num(p.counters.replayedSteps),
               TextTable::num(p.counters.speculations),
               p.completed ? "yes" : "no"});
    t.print(std::cout);
    std::cout << "the penalty model keeps dead nodes in the ring; the "
                 "elastic engine fails\nover to spares, shrinks the "
                 "world, and replays actual lost steps.\n";
    return points;
}

/** Satellite of BENCH_runtime.json: the resilience trajectory. */
void
writeResilienceJson(const std::vector<ElasticPoint> &points)
{
    std::ofstream out("BENCH_resilience.json");
    out << "{\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ElasticPoint &p = points[i];
        out << "    {\"name\": \"" << p.name
            << "\", \"seconds\": " << p.seconds
            << ", \"steps_done\": " << p.stepsDone
            << ", \"completed\": " << (p.completed ? "true" : "false")
            << ", \"fault_events_per_sim_sec\": "
            << p.faultEventsPerSimSec
            << ", \"failovers\": " << p.counters.failovers
            << ", \"shrinks\": " << p.counters.shrinks
            << ", \"rollbacks\": " << p.counters.rollbacks
            << ", \"replayed_steps\": " << p.counters.replayedSteps
            << ", \"speculations\": " << p.counters.speculations
            << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    // stderr: the golden-diffed stdout must stay byte-identical.
    std::cerr << "wrote BENCH_resilience.json\n";
}

void
eccCheckpointCurves(bool smoke)
{
    bench::banner("ECC scrubbing and checkpoint/restart cost");

    memory::DramConfig hbm;
    hbm.ecc.correctablePerGiB = 1e-3;
    hbm.ecc.correctableStallSec = 5e-6;
    hbm.ecc.uncorrectablePerGiB = 1e-9;
    const memory::DramModel dram(hbm);
    TextTable e("ECC on 1.2 TB/s HBM");
    e.header({"transfer", "stream (ms)", "corrections",
              "stall (us)", "overhead %"});
    for (Bytes bytes : {Bytes(1) << 30, Bytes(64) << 30,
                        Bytes(512) << 30}) {
        const double stream = dram.streamTime(bytes);
        const double stall = dram.eccStallTime(bytes);
        e.row({formatBytes(bytes), TextTable::num(stream * 1e3, 3),
               TextTable::num(dram.expectedCorrectable(bytes), 3),
               TextTable::num(stall * 1e6, 3),
               TextTable::num(100.0 * stall / stream, 4)});
    }
    e.print(std::cout);
    std::cout << "uncorrectable @ full bandwidth: "
              << TextTable::num(
                     dram.uncorrectablePerSecAtFullBandwidth() * 3600,
                     4)
              << " events/hour/chip\n";

    const double work = smoke ? 3600.0 : 24 * 3600.0;
    CheckpointPolicy ckpt;
    ckpt.enabled = true;
    ckpt.intervalSec = 600.0;
    ckpt.saveSec = 5.0;
    ckpt.restartSec = 30.0;
    const CheckpointPolicy off;
    TextTable c("checkpoint/restart, " +
                TextTable::num(work / 3600.0, 0) + " h of work");
    c.header({"errors/s", "no ckpt (h)", "ckpt 10min (h)",
              "ckpt wins"});
    for (double rate : {0.0, 1e-5, 1e-4, 1e-3}) {
        const double bare =
            resilience::timeWithCheckpointRestart(work, rate, off);
        const double saved =
            resilience::timeWithCheckpointRestart(work, rate, ckpt);
        c.row({TextTable::num(rate, 5),
               TextTable::num(bare / 3600.0, 3),
               TextTable::num(saved / 3600.0, 3),
               saved < bare ? "yes" : "no"});
    }
    c.print(std::cout);
    std::cout << "with no checkpoints an uncorrectable error forfeits "
                 "half the run on\naverage; the 10-minute cadence caps "
                 "rework at interval/2 + restart.\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string golden;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--golden") == 0 &&
                   i + 1 < argc) {
            golden = argv[++i];
        } else {
            fatal("unknown flag '%s' (--smoke, --golden <file>)",
                  argv[i]);
        }
    }

    // With --golden the bench self-checks its stdout against the
    // checked-in file through bench::checkGolden, so the whitespace
    // normalization lives in exactly one place instead of per-CI-job
    // sed pipelines.
    std::ostringstream captured;
    std::streambuf *const saved =
        golden.empty() ? nullptr : std::cout.rdbuf(captured.rdbuf());

    trainingSweep(smoke);
    chipSweep(smoke);
    // The chip-sim-driven cluster sweep is not part of the golden
    // smoke output (it exists since PR 3); full runs only.
    if (!smoke)
        chipClusterSweep();
    const std::vector<ElasticPoint> elastic = elasticSweep(smoke);
    eccCheckpointCurves(smoke);
    writeResilienceJson(elastic);

    if (saved) {
        std::cout.rdbuf(saved);
        std::cout << captured.str();
        if (!bench::checkGolden(captured.str(), golden))
            return 1;
        std::cerr << "golden OK: " << golden << "\n";
    }
    return 0;
}
