/**
 * @file
 * Section 4.1: LLC capacity scaling with 3D-SRAM. The paper reports
 * that growing the on-chip LLC from 96 MB to 720 MB improves ResNet50
 * training by 1.71x and BERT by 1.51x. This bench sweeps the LLC
 * capacity of the training SoC and replays the training step's tensor
 * traffic through the set-associative cache model.
 *
 * Expected shape (paper): monotonic improvement with capacity,
 * ResNet50 gaining more than BERT, in the 1.5-1.7x band at 720 MB.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/zoo.hh"
#include "soc/training_soc.hh"

using namespace ascend;

namespace {

void
sweep(const char *name, const model::Network &per_core_net,
      const char *paper_note)
{
    bench::banner(std::string("LLC capacity sweep: ") + name);
    TextTable t(name);
    t.header({"LLC (MiB)", "step (ms)", "LLC hit %", "HBM traffic",
              "speedup vs 96 MiB"});
    // Each capacity point builds its own TrainingSoc (and its own LLC
    // replay state), so the sweep runs through the pool; rows print
    // in capacity order from the index-stable results.
    const std::vector<Bytes> mibs = {96, 192, 360, 720};
    const auto steps = runtime::parallelMap(mibs, [&](Bytes mib) {
        soc::TrainingSocConfig cfg;
        // Section 4.1 evaluates the *next-generation* training device
        // (3D-SRAM stacking): roughly twice the 910's compute with
        // the same HBM subsystem, which is what makes the LLC the
        // first-order knob.
        cfg.name = "ascend-next-gen";
        cfg.aiCores = 64;
        cfg.llcCapacity = mib * kMiB;
        soc::TrainingSoc soc(cfg);
        return soc.trainStep(per_core_net);
    });
    const double base_sec = steps.front().seconds;
    const double sec720 = steps.back().seconds;
    for (std::size_t i = 0; i < mibs.size(); ++i) {
        const auto &step = steps[i];
        t.row({TextTable::num(std::uint64_t(mibs[i])),
               TextTable::num(step.seconds * 1e3, 2),
               TextTable::num(100 * step.llcHitRate(), 1),
               formatBytes(step.hbmTrafficBytes),
               TextTable::num(base_sec / step.seconds, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "720 MiB speedup: "
              << TextTable::num(base_sec / sec720, 2) << "x  " << paper_note
              << "\n";
}

} // anonymous namespace

int
main()
{
    sweep("ResNet50 training (global batch 256, next-gen device)", model::zoo::resnet50(4),
          "(paper: 1.71x)");
    sweep("BERT-Base training (global batch 128, seq 128)",
          model::zoo::bertBase(2, 128), "(paper: 1.51x)");
    return 0;
}
