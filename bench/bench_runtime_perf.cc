/**
 * @file
 * Runtime performance trajectory: wall-clock per simulation stage,
 * cache effectiveness and thread budget, emitted both as a human
 * table and as machine-readable `BENCH_runtime.json` in the current
 * directory — so the repo has one number stream to track the hot
 * path across PRs.
 *
 * Stages:
 *  - resnet50 infer (cold): per-layer cycle simulation, first touch
 *    (a warm ASCEND_CACHE_DIR makes even this one mostly cache hits —
 *    which is exactly what the CI warm-cache job asserts);
 *  - resnet50 infer (warm): identical query, in-memory cache hits;
 *  - bert-base training: forward+backward layer sweep;
 *  - chip-sim 32-core: the fluid SoC step (layer sim + event loop);
 *  - chip-sim 4096-core synthetic: a pure event-loop stress at
 *    cluster-node scale, where the parallel advance and active-core
 *    index set dominate (no layer simulation in the loop).
 *
 * Timings vary run to run, so nothing here is golden-diffed; the
 * JSON is for trend lines and the warm-cache CI assertion.
 */

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/zoo.hh"
#include "soc/chip_sim.hh"
#include "soc/training_soc.hh"

using namespace ascend;
using Clock = std::chrono::steady_clock;

namespace {

struct Stage
{
    std::string name;
    double seconds = 0;
};

double
elapsedSec(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Synthetic cluster-node-scale chip: many cores, no layer sim. */
soc::ChipSimResult
syntheticChipSim(unsigned cores, unsigned tasks_per_core)
{
    std::vector<std::vector<soc::CoreTask>> work(cores);
    for (unsigned c = 0; c < cores; ++c)
        for (unsigned k = 0; k < tasks_per_core; ++k)
            work[c].push_back(
                soc::CoreTask{1e-4 * (1 + (c + 3 * k) % 5),
                              Bytes((c % 11) + k + 1) * kMiB});
    return soc::runChipSim(work, 4e12);
}

void
writeJson(const std::vector<Stage> &stages,
          const runtime::SimCache::Stats &cache, unsigned threads,
          double sweep_exact_sec, double sweep_surrogate_sec)
{
    std::ofstream out("BENCH_runtime.json");
    out << "{\n  \"threads\": " << threads << ",\n  \"stages\": [\n";
    for (std::size_t i = 0; i < stages.size(); ++i)
        out << "    {\"name\": \"" << stages[i].name
            << "\", \"seconds\": " << stages[i].seconds << "}"
            << (i + 1 < stages.size() ? "," : "") << "\n";
    out << "  ],\n  \"surrogate\": {\"exact_seconds\": "
        << sweep_exact_sec
        << ", \"surrogate_seconds\": " << sweep_surrogate_sec
        << ", \"speedup\": "
        << (sweep_surrogate_sec > 0
                ? sweep_exact_sec / sweep_surrogate_sec
                : 0)
        << "},\n  \"cache\": {\"hits\": " << cache.hits
        << ", \"misses\": " << cache.misses
        << ", \"hit_rate\": " << cache.hitRate()
        << ", \"entries\": " << cache.entries
        << ", \"disk_loads\": " << cache.diskLoads
        << ", \"disk_stores\": " << cache.diskStores << "}\n}\n";
}

} // anonymous namespace

int
main()
{
    bench::banner("Runtime perf trajectory (wall clock, not golden)");

    std::vector<Stage> stages;
    auto timeStage = [&stages](const std::string &name,
                               const std::function<void()> &fn) {
        const auto start = Clock::now();
        fn();
        stages.push_back({name, elapsedSec(start)});
    };

    soc::TrainingSoc soc910;
    runtime::SimSession session(soc910.coreConfig());

    timeStage("resnet50 infer (cold)", [&] {
        session.inferenceResult(model::zoo::resnet50(4));
    });
    timeStage("resnet50 infer (warm)", [&] {
        session.inferenceResult(model::zoo::resnet50(4));
    });
    timeStage("bert-base training", [&] {
        session.runTraining(model::zoo::bertBase(8));
    });
    timeStage("chip-sim 32-core fluid step", [&] {
        soc910.fluidInferStep(model::zoo::resnet50(4));
    });
    timeStage("chip-sim 4096-core synthetic", [&] {
        syntheticChipSim(4096, 64);
    });

    // Surrogate-off vs surrogate-on over one design-space sweep (a
    // GEMM m-axis scan on fresh private caches, so neither leg can
    // feed the other): the perf trajectory's record of what the
    // surrogate tier buys.
    const auto mSweep = [](const runtime::SimSession &s) {
        for (unsigned m = 500; m < 2500; m += 37)
            s.runLayer(model::Layer::linear("sweep", m, 1024, 1024));
    };
    timeStage("design sweep (exact)", [&] {
        const runtime::SimSession exact(
            soc910.coreConfig(), {},
            std::make_shared<runtime::SimCache>(), {},
            surrogate::SurrogateOptions{});
        mSweep(exact);
    });
    const double sweepExactSec = stages.back().seconds;
    timeStage("design sweep (surrogate)", [&] {
        surrogate::SurrogateOptions sur;
        sur.enabled = true;
        const runtime::SimSession pred(
            soc910.coreConfig(), {},
            std::make_shared<runtime::SimCache>(), {}, sur);
        mSweep(pred);
    });
    const double sweepSurrogateSec = stages.back().seconds;

    const unsigned threads = runtime::ThreadPool::configuredThreads();
    const runtime::SimCache::Stats cache =
        runtime::SimSession::processCache()->stats();

    TextTable t("per-stage wall clock, " +
                TextTable::num(std::uint64_t(threads)) + " threads");
    t.header({"stage", "seconds"});
    for (const Stage &s : stages)
        t.row({s.name, TextTable::num(s.seconds, 4)});
    t.print(std::cout);
    std::cout << "cache: " << cache.hits << " hits / " << cache.misses
              << " misses ("
              << TextTable::num(100.0 * cache.hitRate(), 1)
              << "% hit rate)\n";

    if (sweepSurrogateSec > 0)
        std::cout << "surrogate design-sweep speedup: "
                  << TextTable::num(
                         sweepExactSec / sweepSurrogateSec, 1)
                  << "x\n";
    writeJson(stages, cache, threads, sweepExactSec,
              sweepSurrogateSec);
    std::cout << "wrote BENCH_runtime.json\n";
    return 0;
}
