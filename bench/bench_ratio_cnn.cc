/**
 * @file
 * Figures 6 and 7: cube/vector execution-time ratio per operator for
 * MobileNetV2 and ResNet50 inference on the 8192 FLOPS/cycle + 256 B
 * configuration (the paper profiles both on the big core to motivate
 * the Lite core's relatively wider vector unit).
 *
 * Expected shape (paper): most MobileNet operators fall between 0 and
 * 1 (vector-bound depthwise stages), while ResNet50's first operators
 * sit close to 1 and later ones well above it. The bench also re-runs
 * MobileNet on the tailored Ascend-Lite configuration (cube 2048,
 * vector 128 B) to show the ratio recovering.
 */

#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

int
main()
{
    const auto max_cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    runtime::SimSession session(max_cfg);

    bench::banner("Figure 6: cube/vector ratio, MobileNetV2 inference "
                  "(cube 8192 FLOPS/cy, vector 256 B)");
    const auto mobilenet = model::zoo::mobilenetV2(1);
    bench::printRatioSeries(
        "MobileNetV2 b=1",
        runtime::fusionGroups(session.runInference(mobilenet)));

    bench::banner("Figure 7: cube/vector ratio, ResNet50 inference "
                  "(cube 8192 FLOPS/cy, vector 256 B)");
    const auto resnet = model::zoo::resnet50(1);
    bench::printRatioSeries(
        "ResNet50 b=1",
        runtime::fusionGroups(session.runInference(resnet)));

    bench::banner("Section 2.4 check: MobileNetV2 on the tailored "
                  "Ascend-Lite core (cube 2048, vector 128 B)");
    runtime::SimSession lite(
        arch::makeCoreConfig(arch::CoreVersion::Lite));
    bench::printRatioSeries(
        "MobileNetV2 b=1 on Lite",
        runtime::fusionGroups(lite.runInference(mobilenet)));
    return 0;
}
