/**
 * @file
 * Table 9: automotive SoC PPA — Ascend 610 against the published
 * Xavier / Tesla-FSD / EyeQ5 numbers, plus the effects the paper
 * argues qualitatively: systolic pipelines bubble on small
 * perception networks while the Ascend cube does not, and int4
 * halves inference cost.
 *
 * Expected shape (paper): 610 leads peak TOPS (160 vs 73/34/24) at
 * 65 W; FSD-style systolic arrays lose utilization on small nets.
 */

#include <iostream>

#include "baseline/systolic.hh"
#include "bench/bench_util.hh"
#include "model/zoo.hh"
#include "soc/auto_soc.hh"

using namespace ascend;

int
main()
{
    soc::AutoSoc soc610;

    bench::banner("Table 9: automotive SoC PPA");
    TextTable t("modelled | paper");
    t.header({"metric", "Xavier", "Tesla FSD", "EyeQ5", "Ascend 610",
              "610 modelled"});
    t.row({"Peak perf (TOPS int8)", "34", "73", "24", "160",
           TextTable::num(soc610.peakOpsInt8() / 1e12, 0)});
    t.row({"Power (W)", "30", "100", "10", "65",
           TextTable::num(soc610.config().tdpWatts, 0)});
    t.row({"Area (mm2)", "350", "260", "-", "401",
           TextTable::num(soc610.config().dieMm2, 0)});
    t.row({"Process (nm)", "12", "14", "7", "7", "7"});
    t.print(std::cout);
    std::cout << "int4 peak: "
              << TextTable::num(soc610.peakOpsInt4() / 1e12, 0)
              << " TOPS (Section 3.3 low-precision mode)\n";

    // Multi-model perception frame: the paper's comprehensive-decision
    // setup runs several networks concurrently, one per core.
    const auto resnet = model::zoo::resnet50(1, DataType::Int8);
    const auto mobilenet = model::zoo::mobilenetV2(1, DataType::Int8);
    const double frame_ms = soc610.frameLatencySeconds(
        {&resnet, &resnet, &mobilenet, &mobilenet}) * 1e3;
    std::cout << "\nMulti-model frame (2x ResNet50 + 2x MobileNetV2, "
                 "int8, incl. DVPP): "
              << TextTable::num(frame_ms, 2) << " ms -> "
              << TextTable::num(1e3 / frame_ms, 0) << " fps\n";

    // Small-network utilization: the systolic bubbles claim.
    bench::banner("Section 6.3 claim: systolic bubbles on small "
                  "networks");
    baseline::SystolicArray fsd(baseline::fsdLike());
    TextTable u("MAC utilization on batch-1 perception nets");
    u.header({"network", "FSD-like 96x96 systolic util %",
              "Ascend cube util % (610 core)"});
    runtime::SimSession session(soc610.coreConfig());
    auto cube_util = [&](const model::Network &net) {
        Flops flops = 0;
        Cycles busy = 0;
        for (const auto &run : session.runInference(net)) {
            flops += run.result.totalFlops;
            busy += run.result.pipe(isa::Pipe::Cube).busyCycles;
        }
        const auto shape =
            soc610.coreConfig().cubeShapeFor(DataType::Int8);
        return busy ? 100.0 * double(flops) /
                          (double(busy) * shape.flopsPerCycle())
                    : 0.0;
    };
    for (const auto *net : {&resnet, &mobilenet}) {
        const auto r = fsd.runInference(*net);
        u.row({net->name, TextTable::num(100 * r.utilization, 1),
               TextTable::num(cube_util(*net), 1)});
    }
    u.print(std::cout);
    std::cout << "(paper: FSD 'suffers from massive bubbles in pipeline "
                 "during processing\n small-scale neural networks')\n";

    // SLAM on the cube-less Vector Core (Section 3.3).
    bench::banner("Section 3.3: SLAM front-end on the Vector Core");
    const auto slam = model::zoo::slamFrontend(2048);
    const double slam_ms = soc610.slamLatencySeconds(slam) * 1e3;
    std::cout << "stereo + feature sort/match + quaternion pose + "
                 "clustering + LP: "
              << TextTable::num(slam_ms, 2) << " ms/frame ("
              << TextTable::num(1e3 / slam_ms, 0)
              << " Hz localization loop) on one Vector Core\n"
              << "(sorting / stereo / quaternion / clustering / LP are "
                 "the Section 3.3 vector-unit\n micro-architecture "
                 "extensions)\n";
    return 0;
}
