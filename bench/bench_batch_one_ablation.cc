/**
 * @file
 * Section 3.2 ablation: cube m-dimension for batch-1 mobile
 * inference. "When batch size turns to 1, the smaller m dimension
 * improves cube's MAC utilization" — the reason Ascend-Lite tailors
 * the cube from 16x16x16 to 4x16x16.
 *
 * The bench runs MobileNetV2 at batch 1 and 8 on a Lite-class core
 * with three m0 choices and reports MAC utilization and end-to-end
 * cycles per image.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

struct Sample
{
    double utilization;
    double cycles_per_image;
};

Sample
run(unsigned m0, unsigned batch)
{
    auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    cfg.cube = arch::CubeShape{m0, 16, 16};
    // Scale bus A with the cube's row appetite so the comparison
    // isolates the utilization effect.
    cfg.busABytesPerCycle = cfg.busABytesPerCycle * m0 / 4;
    runtime::SimSession session(cfg);
    const auto net = model::zoo::mobilenetV2(batch);
    Flops flops = 0;
    Cycles cube_busy = 0, total = 0;
    for (const auto &r : session.runInference(net)) {
        if (r.layer.isCubeLayer()) {
            flops += r.result.totalFlops;
            cube_busy += r.result.pipe(isa::Pipe::Cube).busyCycles;
        }
        total += r.result.totalCycles;
    }
    Sample s;
    s.utilization = cube_busy
        ? double(flops) / (double(cube_busy) *
                           cfg.cube.flopsPerCycle())
        : 0.0;
    s.cycles_per_image = double(total) / batch;
    return s;
}

} // anonymous namespace

int
main()
{
    bench::banner("Section 3.2 ablation: cube m0 for batch-1 mobile "
                  "inference (MobileNetV2, Lite-class core)");
    TextTable t("m0 sweep");
    t.header({"cube", "batch", "MAC utilization %", "kcycles/image",
              "shipped?"});
    // Six independent (m0, batch) design points; sweep them through
    // the pool and print rows in the fixed grid order.
    std::vector<std::pair<unsigned, unsigned>> grid;
    for (unsigned batch : {1u, 8u})
        for (unsigned m0 : {4u, 8u, 16u})
            grid.emplace_back(m0, batch);
    const auto samples = runtime::parallelMap(
        grid, [](const std::pair<unsigned, unsigned> &p) {
            return run(p.first, p.second);
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto [m0, batch] = grid[i];
        const Sample &s = samples[i];
        t.row({std::to_string(m0) + "x16x16",
               TextTable::num(std::uint64_t(batch)),
               TextTable::num(100 * s.utilization, 1),
               TextTable::num(s.cycles_per_image / 1000.0, 0),
               (m0 == 4 && batch == 1) ? "<= Lite ships 4x16x16"
                                       : ""});
    }
    t.print(std::cout);
    std::cout << "At batch 1 the im2col m dimension is small (spatial "
                 "only), so a tall cube wastes\nrows; at batch 8 the "
                 "gap closes - exactly the Section 3.2 argument for "
                 "tailoring m0.\n";
    return 0;
}
