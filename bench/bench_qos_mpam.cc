/**
 * @file
 * Section 3.3: MPAM + QoS protection in the automotive SoC.
 *
 * Two experiments:
 *  1. LLC way partitioning (MPAM): a latency-critical perception
 *     task's hot working set shares the LLC with bulk streaming
 *     traffic; MPAM reserves ways for it.
 *  2. NoC QoS: high-priority flits keep low latency under bulk load
 *     on the mesh (priority arbitration ~ the paper's starvation
 *     avoidance).
 *
 * Expected shape: without MPAM the critical task's hit rate collapses
 * under streaming interference and its memory latency approaches
 * DRAM latency; with MPAM it stays near the LLC latency. With QoS,
 * critical-flit latency stays near the unloaded value.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "noc/mesh.hh"
#include "noc/ring.hh"
#include "soc/auto_soc.hh"

using namespace ascend;

int
main()
{
    soc::AutoSoc soc610;

    bench::banner("Section 3.3 (1): MPAM way partitioning in the LLC");
    TextTable t("critical task vs streaming interference");
    t.header({"MPAM ways reserved", "critical hit %", "critical avg "
              "mem latency (ns)", "bulk hit %"});
    for (unsigned ways : {0u, 2u, 4u, 8u}) {
        const auto r = soc610.qosExperiment(ways);
        t.row({ways ? TextTable::num(std::uint64_t(ways)) : "off",
               TextTable::num(100 * r.criticalHitRate, 1),
               TextTable::num(r.criticalAvgLatencyNs, 1),
               TextTable::num(100 * r.bulkHitRate, 1)});
    }
    t.print(std::cout);
    std::cout << "(MPAM 'manages cache capacity ... more fine-grained'; "
                 "the reserved ways keep the\n critical working set "
                 "resident under interference)\n";

    bench::banner("Section 3.3 (2): NoC QoS under bulk load");
    noc::MeshConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    noc::MeshNoc mesh(cfg);
    TextTable q("priority arbitration");
    q.header({"bulk inject rate", "critical lat (cy)", "bulk lat (cy)"});
    for (double bulk : {0.05, 0.2, 0.4, 0.6}) {
        noc::MixedPriorityTraffic traffic(bulk, 0.05, 4, mesh.nodes());
        mesh.run(traffic, 20000);
        q.row({TextTable::num(bulk, 2),
               TextTable::num(mesh.avgLatency(1), 1),
               TextTable::num(mesh.avgLatency(0), 1)});
    }
    q.print(std::cout);
    std::cout << "(QoS 'is mainly used to avoid starvation': critical "
                 "latency stays flat while bulk\n latency grows with "
                 "load)\n";

    bench::banner("Section 3.3 (3): separated safety ring for the CPU "
                  "domain");
    noc::RingModel ring(noc::RingConfig{});
    std::cout << "ring unloaded latency: "
              << TextTable::num(ring.unloadedLatencyCycles(), 1)
              << " cycles; at 70% load: "
              << TextTable::num(ring.loadedLatencyCycles(0.7), 1)
              << " cycles; saturation "
              << formatRate(ring.saturationBytesPerSecPerNode())
              << " per node\n"
              << "(the CPU domain rides a private ASIL-D ring, so AI "
                 "bulk traffic cannot touch it)\n";
    return 0;
}
