/**
 * @file
 * Figures 4 and 5: cube/vector execution-time ratio per operator for
 * BERT inference and training on the Ascend-Max configuration
 * (cube 8192 FLOPS/cycle, vector 256 B).
 *
 * Expected shape (paper): inference ratios are >> 1 for most
 * operators; training shifts work to the vector unit so ratios drop
 * but stay > 1 for most operators.
 */

#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

int
main()
{
    const auto config = arch::makeCoreConfig(arch::CoreVersion::Max);
    runtime::SimSession session(config);

    // Four encoder layers are enough to show the repeating series
    // (all 24 encoders of BERT-Large are identical).
    const auto net = model::zoo::bert("bert_large_4l", /*batch=*/1,
                                      /*seq_len=*/384, /*hidden=*/1024,
                                      /*layers=*/4, /*heads=*/16,
                                      /*ffn=*/4096);

    bench::banner("Figure 4: cube/vector ratio, BERT inference "
                  "(cube 8192 FLOPS/cy, vector 256 B)");
    const auto inf_runs = session.runInference(net);
    bench::printRatioSeries("BERT inference",
                            runtime::fusionGroups(inf_runs));

    bench::banner("Figure 5: cube/vector ratio, BERT training "
                  "(same configuration)");
    const auto tra_runs = session.runTraining(net);
    bench::printRatioSeries(
        "BERT training (fwd+bwd per operator)",
        runtime::fusionGroupsTraining(tra_runs));
    return 0;
}
