/**
 * @file
 * Figure 9: per-operator L1 memory bandwidth demand for BERT forward
 * and backward (training), MobileNetV2 and ResNet50 (inference),
 * profiled with unlimited L1 bus bandwidth on the 8192 FLOPS/cycle +
 * 256 B configuration.
 *
 * Expected shape (paper): read demand stays below 4096 bits/cycle and
 * write demand below 2048 bits/cycle on every operator, and MobileNet
 * shows the highest L1 demand of the three networks.
 */

#include <functional>

#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

/** The Max core with effectively infinite L1/UB bus width. */
arch::CoreConfig
unlimitedL1Config()
{
    auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    cfg.name = "ascend-max-unlimited-l1";
    cfg.busABytesPerCycle *= 1024;
    cfg.busBBytesPerCycle *= 1024;
    cfg.busUbBytesPerCycle *= 1024;
    return cfg;
}

double
seriesMaxRead(const std::vector<runtime::GroupProfile> &groups)
{
    double mx = 0;
    for (const auto &g : groups)
        mx = std::max(mx, g.l1ReadBitsPerCycle());
    return mx;
}

} // anonymous namespace

int
main()
{
    runtime::SimSession session(unlimitedL1Config());

    // The three profiles are independent network runs on one shared
    // session; produce them through the pool, print in figure order.
    const auto bert = model::zoo::bert("bert_large_2l", 1, 384, 1024, 2,
                                       16, 4096);
    std::vector<std::function<std::vector<runtime::GroupProfile>()>>
        tasks = {
            [&] {
                return runtime::fusionGroupsTraining(
                    session.runTraining(bert));
            },
            [&] {
                return runtime::fusionGroups(
                    session.runInference(model::zoo::mobilenetV2(1)));
            },
            [&] {
                return runtime::fusionGroups(
                    session.runInference(model::zoo::resnet50(1)));
            },
        };
    const auto profiles = runtime::parallelMap(
        tasks,
        [](const std::function<std::vector<runtime::GroupProfile>()> &t) {
            return t();
        });
    const auto &bert_groups = profiles[0];
    const auto &mobile_groups = profiles[1];
    const auto &resnet_groups = profiles[2];

    bench::banner("Figure 9 (a): L1 bandwidth, BERT forward+backward");
    bench::printBandwidthSeries("BERT training", bert_groups);

    bench::banner("Figure 9 (b): L1 bandwidth, MobileNetV2 inference");
    bench::printBandwidthSeries("MobileNetV2", mobile_groups);

    bench::banner("Figure 9 (c): L1 bandwidth, ResNet50 inference");
    bench::printBandwidthSeries("ResNet50", resnet_groups);

    std::cout << "\nCross-network comparison of peak L1 read demand:\n"
              << "  MobileNetV2: "
              << TextTable::num(seriesMaxRead(mobile_groups), 0)
              << " bits/cycle\n  ResNet50:    "
              << TextTable::num(seriesMaxRead(resnet_groups), 0)
              << " bits/cycle\n  BERT:        "
              << TextTable::num(seriesMaxRead(bert_groups), 0)
              << " bits/cycle\n"
              << "(paper: MobileNet shows the highest L1 demand)\n";
    return 0;
}
