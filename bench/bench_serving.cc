/**
 * @file
 * Overload-tolerant fleet serving: goodput and tail latency under
 * offered load, failures, and degradation policy.
 *
 * The sweep drives the serving::runFleet engine with a batch latency
 * curve measured on the repo's own chip simulator (resnet50 on the
 * training-SoC core at anchor batch sizes, memoized by the SimCache)
 * and an open-loop bursty arrival stream, across:
 *
 *   offered load x {shed, no-shed} x {faults, fault-free}
 *
 * The robustness claim the JSON captures: with admission control and
 * deadline-aware shedding the fleet holds goodput near saturation and
 * p99 within the SLO even at 2x offered load, while the ungoverned
 * fleet's tail diverges without bound. Failures cost warm-spare
 * failovers, retries and hedges instead of lost requests.
 *
 * Modes:
 *  - (no args): the sweep. Prints deterministic tables (byte-stable
 *    at any ASCEND_THREADS) and writes BENCH_serving.json;
 *  - --chaos: SIGKILL/resume byte-diff experiment — kill a child at
 *    >= 3 seeded event boundaries, resume, and require the resumed
 *    report byte-identical to the uninterrupted one (CI job);
 *  - --run --seed <n> --ckpt-dir <d> --out <f>: chaos child mode.
 *
 * The chaos scenario uses a synthetic latency curve: crash
 * consistency of the engine is under test there, not the cost model.
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "model/zoo.hh"
#include "resilience/fault_domain.hh"
#include "serving/fleet.hh"
#include "soc/training_soc.hh"

using namespace ascend;
using resilience::CorrelatedFaultSpec;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using serving::ArrivalSpec;
using serving::BatchLatencyModel;
using serving::FleetOptions;
using serving::FleetResult;
using serving::QosTier;
using serving::Request;

namespace {

/** One sweep configuration and its outcome. */
struct Cell
{
    double load = 0;    ///< offered / saturation
    bool shed = false;  ///< admission control + deadline drops on
    bool faults = false;
    FleetResult r;
};

/** The two QoS classes every sweep cell serves. */
std::vector<QosTier>
sweepTiers(double batch_latency_sec)
{
    QosTier premium;
    premium.name = "premium";
    premium.deadlineSec = 5.0 * batch_latency_sec;
    premium.share = 0.2;
    premium.sheddable = false;
    premium.reservedSlots = 2;
    QosTier standard;
    standard.name = "standard";
    standard.deadlineSec = 3.0 * batch_latency_sec;
    standard.share = 0.8;
    standard.sheddable = true;
    standard.reservedSlots = 0;
    return {premium, standard};
}

FleetOptions
sweepOptions(double batch_latency_sec, bool shed)
{
    FleetOptions o;
    o.replicas = 4;
    o.warmSpares = 1;
    o.failoverSec = 2.0 * batch_latency_sec;
    o.admission.enabled = shed;
    o.admission.slackFactor = 1.0;
    o.hedge.enabled = true;
    o.hedge.afterSec = 1.25 * batch_latency_sec;
    o.autoscale.enabled = true;
    o.autoscale.checkIntervalSec = 2.0 * batch_latency_sec;
    o.autoscale.queueDepthPerReplica = 16;
    o.autoscale.spinUpSec = 5.0 * batch_latency_sec;
    o.autoscale.maxExtraReplicas = 2;
    o.retry.maxRetries = 3;
    o.retry.timeoutSec = 0.5 * batch_latency_sec;
    o.retry.backoffBaseSec = 0.1 * batch_latency_sec;
    return o;
}

FaultSchedule
sweepFaults(double horizon_sec, unsigned replicas, bool enabled)
{
    FaultSpec spec;
    if (!enabled)
        return FaultSchedule::generate(spec);
    spec.seed = 8;
    spec.horizonSec = horizon_sec;
    spec.cores = replicas;
    // ~2 permanent failures and ~2 outages across the fleet per run,
    // plus one-in-four replicas straggling.
    spec.corePermanentPerSec = 2.0 / (horizon_sec * replicas);
    spec.coreTransientPerSec = 2.0 / (horizon_sec * replicas);
    spec.coreRepairSec = horizon_sec / 20.0;
    spec.stragglerFraction = 0.25;
    spec.stragglerSlowdown = 1.5;
    return FaultSchedule::generate(spec);
}

Cell
runCell(const BatchLatencyModel &model, double load, bool shed,
        bool faults_on)
{
    const double lb = model.latencySeconds(model.maxBatch());
    const FleetOptions options = sweepOptions(lb, shed);
    const double sat =
        model.saturationRequestsPerSec(options.replicas);

    ArrivalSpec arr;
    arr.seed = 41;
    arr.ratePerSec = load * sat;
    arr.horizonSec = 2000.0 / sat; // ~2000*load offered requests
    arr.burstFactor = 2.0;
    arr.burstPeriodSec = arr.horizonSec / 10.0;
    arr.burstDuty = 0.3;

    const std::vector<QosTier> tiers = sweepTiers(lb);
    const std::vector<Request> arrivals =
        serving::generateArrivals(arr, tiers);
    const FaultSchedule faults =
        sweepFaults(arr.horizonSec, options.replicas, faults_on);

    Cell c;
    c.load = load;
    c.shed = shed;
    c.faults = faults_on;
    c.r = serving::runFleet(arrivals, tiers, model, faults, options);
    return c;
}

std::string
ms(double sec)
{
    return TextTable::num(sec * 1e3, 3);
}

void
printTable(const std::vector<Cell> &cells, bool faults_on,
           double slo_sec)
{
    TextTable t(std::string("fleet under ") +
                (faults_on ? "seeded failures" : "no failures") +
                " (SLO p99 <= " + ms(slo_sec) + " ms)");
    t.header({"load", "policy", "offered", "shed", "goodput",
              "goodput%", "p50 ms", "p99 ms", "p999 ms", "failover",
              "hedges", "retries"});
    for (const Cell &c : cells) {
        if (c.faults != faults_on)
            continue;
        const double pct =
            c.r.offered
                ? 100.0 * double(c.r.goodput) / double(c.r.offered)
                : 0;
        t.row({TextTable::num(c.load, 2),
               c.shed ? "shed" : "no-shed",
               TextTable::num(c.r.offered),
               TextTable::num(c.r.shed),
               TextTable::num(c.r.goodput), TextTable::num(pct, 1),
               ms(c.r.p50), ms(c.r.p99), ms(c.r.p999),
               TextTable::num(c.r.failovers),
               TextTable::num(c.r.hedges),
               TextTable::num(c.r.retries)});
    }
    t.print(std::cout);
}

/**
 * One correlated-chaos configuration and its outcome. The three
 * defense levels bracket the metastable-failure story:
 *  - undefended: no admission control at all — the rack outage's
 *    backlog is never shed, every later request queues behind it, and
 *    the fleet stays degraded long after the fault clears;
 *  - governed: admission + deadline shedding with closed-loop clients
 *    re-offering shed work — bounded tail, but the synchronized
 *    re-offer wave costs goodput;
 *  - defended: governed plus jittered backoff, per-replica circuit
 *    breakers, and the brownout ladder (dispatching a cheaper model
 *    under sustained overload) — the backlog drains while the outage
 *    is still in progress.
 */
struct CorrCell
{
    std::string name;
    FleetResult r;
    /** Sim time after fault clearance until a full recovery window
     *  (windowed p99 within bound); -1 = never recovered. */
    double recoverySec = -1;
    /** On-time completions per sim-second after fault clearance. */
    double postGoodputRps = 0;
};

enum class Defense { Undefended, Governed, Defended };

std::uint64_t
faultSeedFromEnv()
{
    const char *env = std::getenv("ASCEND_FAULT_SEED");
    return env && *env ? std::strtoull(env, nullptr, 10) : 17;
}

FleetOptions
correlatedOptions(double batch_latency_sec, Defense defense,
                  std::uint64_t seed)
{
    const double lb = batch_latency_sec;
    FleetOptions o;
    o.replicas = 8; // two racks of four
    o.warmSpares = 0;
    o.admission.enabled = defense != Defense::Undefended;
    o.admission.slackFactor = 1.0;
    o.retry.maxRetries = 3;
    o.retry.timeoutSec = 0.5 * lb;
    o.retry.backoffBaseSec = 0.1 * lb;
    o.reoffer.enabled = true;
    o.reoffer.delaySec = 2.0 * lb;
    o.reoffer.maxReoffers = 2;
    if (defense == Defense::Defended) {
        o.retry.jitterFraction = 0.5;
        o.retry.jitterSeed = seed;
        o.health.enabled = true;
        o.health.cooloffSec = 2.0 * lb;
        o.brownout.enabled = true;
        o.brownout.enterQueueDepthPerReplica = 16;
        o.brownout.exitQueueDepthPerReplica = 2;
        o.brownout.minResidencySec = 5.0 * lb;
    }
    return o;
}

/** Windowed-p99 recovery point and post-clear goodput rate. */
void
recoveryMetrics(CorrCell &c, double clear_sec, double window_sec,
                double bound_sec)
{
    const FleetResult &r = c.r;
    std::uint64_t on_time = 0;
    for (std::size_t i = 0; i < r.completionsSec.size(); ++i)
        if (r.completionsSec[i] > clear_sec && r.completedOnTime[i])
            ++on_time;
    const double span = std::max(r.makespanSec - clear_sec, 1e-12);
    c.postGoodputRps = double(on_time) / span;

    for (unsigned k = 0;; ++k) {
        const double lo = clear_sec + double(k) * window_sec;
        if (lo >= r.makespanSec)
            return; // never recovered
        const double hi = lo + window_sec;
        std::vector<double> lat;
        for (std::size_t i = 0; i < r.completionsSec.size(); ++i)
            if (r.completionsSec[i] >= lo && r.completionsSec[i] < hi)
                lat.push_back(r.latencies[i]);
        if (lat.empty())
            continue; // recovery needs evidence, not silence
        std::sort(lat.begin(), lat.end());
        const double p99 = lat[(lat.size() - 1) * 99 / 100];
        if (p99 <= bound_sec) {
            c.recoverySec = hi - clear_sec;
            return;
        }
    }
}

/** Shared inputs of the three correlated-chaos cells. */
struct CorrSetup
{
    std::uint64_t seed = 0;
    std::string profile;
    double clearSec = 0;  ///< last fault event fully over
    double windowSec = 0; ///< recovery-scan window width
    double boundSec = 0;  ///< windowed-p99 recovery bound
    double recoveryWindowSec = 0; ///< CI bound on recoverySec
};

std::vector<CorrCell>
correlatedSweep(const BatchLatencyModel &model,
                const BatchLatencyModel &cheap, CorrSetup &setup)
{
    const double lb = model.latencySeconds(model.maxBatch());
    const double sat = model.saturationRequestsPerSec(8);

    // Flat arrivals just under saturation: the rack outage is the
    // only disturbance, so recovery time is attributable to it.
    ArrivalSpec arr;
    arr.seed = 43;
    arr.ratePerSec = 0.95 * sat;
    arr.horizonSec = 100.0 * lb;

    const std::vector<QosTier> tiers = sweepTiers(lb);
    const std::vector<Request> arrivals =
        serving::generateArrivals(arr, tiers);

    CorrelatedFaultSpec cspec;
    cspec.seed = setup.seed;
    cspec.horizonSec = arr.horizonSec;
    cspec.topology.replicas = 8;
    cspec.topology.replicasPerRack = 4;
    if (!resilience::applyFaultProfile(cspec, setup.profile))
        fatal("unknown ASCEND_FAULT_PROFILE '%s'",
              setup.profile.c_str());
    const FaultSchedule faults =
        resilience::generateCorrelated(cspec);

    setup.clearSec = 0;
    for (const resilience::FaultEvent &e : faults.events())
        setup.clearSec =
            std::max(setup.clearSec, e.timeSec + e.durationSec);
    setup.windowSec = 5.0 * lb;
    setup.boundSec = tiers[0].deadlineSec + lb;
    setup.recoveryWindowSec = 3.0 * setup.windowSec;

    const struct
    {
        const char *name;
        Defense defense;
    } kCells[] = {{"undefended", Defense::Undefended},
                  {"governed", Defense::Governed},
                  {"defended", Defense::Defended}};
    std::vector<CorrCell> cells;
    for (const auto &k : kCells) {
        CorrCell c;
        c.name = k.name;
        const FleetOptions o =
            correlatedOptions(lb, k.defense, setup.seed);
        c.r = serving::runFleet(
            arrivals, tiers, model, faults, o,
            k.defense == Defense::Defended ? &cheap : nullptr);
        recoveryMetrics(c, setup.clearSec, setup.windowSec,
                        setup.boundSec);
        cells.push_back(std::move(c));
    }
    return cells;
}

void
printCorrelated(const std::vector<CorrCell> &cells,
                const CorrSetup &setup)
{
    TextTable t("correlated rack outage (profile " + setup.profile +
                ", seed " + std::to_string(setup.seed) +
                "): clear " + ms(setup.clearSec) +
                " ms, recovery bound p99 <= " + ms(setup.boundSec) +
                " ms");
    t.header({"defense", "offered", "shed", "reoffer", "goodput",
              "brownout", "breaker", "p99 ms", "recover ms",
              "post-rps"});
    for (const CorrCell &c : cells)
        t.row({c.name, TextTable::num(c.r.offered),
               TextTable::num(c.r.shed),
               TextTable::num(c.r.reoffered),
               TextTable::num(c.r.goodput),
               TextTable::num(c.r.brownoutGoodput),
               TextTable::num(c.r.breakerTrips), ms(c.r.p99),
               c.recoverySec < 0 ? "never" : ms(c.recoverySec),
               TextTable::num(c.postGoodputRps, 1)});
    t.print(std::cout);
}

void
writeJson(const std::vector<Cell> &cells, double saturation_rps,
          double slo_sec, double p99_bound_sec,
          const std::vector<CorrCell> &corr, const CorrSetup &setup)
{
    std::ofstream out("BENCH_serving.json");
    out << "{\n  \"saturation_rps\": " << saturation_rps
        << ",\n  \"slo_p99_sec\": " << slo_sec
        // A governed fleet's hard tail bound: a request dispatched
        // just before its deadline still rides one full batch.
        << ",\n  \"p99_bound_sec\": " << p99_bound_sec
        << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        out << "    {\"load\": " << c.load
            << ", \"shed\": " << (c.shed ? "true" : "false")
            << ", \"faults\": " << (c.faults ? "true" : "false")
            << ", \"offered\": " << c.r.offered
            << ", \"admitted\": " << c.r.admitted
            << ", \"shed_count\": " << c.r.shed
            << ", \"completed\": " << c.r.completed
            << ", \"goodput\": " << c.r.goodput
            << ", \"p50_sec\": " << c.r.p50
            << ", \"p99_sec\": " << c.r.p99
            << ", \"p999_sec\": " << c.r.p999
            << ", \"retries\": " << c.r.retries
            << ", \"hedges\": " << c.r.hedges
            << ", \"failures\": " << c.r.replicaFailures
            << ", \"failovers\": " << c.r.failovers
            << ", \"autoscale_ups\": " << c.r.autoscaleUps
            << ", \"brownout_goodput\": " << c.r.brownoutGoodput
            << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"correlated\": {\n    \"seed\": " << setup.seed
        << ",\n    \"profile\": \"" << setup.profile
        << "\",\n    \"clear_sec\": " << setup.clearSec
        << ",\n    \"window_sec\": " << setup.windowSec
        << ",\n    \"recovery_bound_sec\": " << setup.boundSec
        << ",\n    \"recovery_window_sec\": "
        << setup.recoveryWindowSec << ",\n    \"cells\": [\n";
    for (std::size_t i = 0; i < corr.size(); ++i) {
        const CorrCell &c = corr[i];
        out << "      {\"name\": \"" << c.name
            << "\", \"offered\": " << c.r.offered
            << ", \"shed\": " << c.r.shed
            << ", \"completed\": " << c.r.completed
            << ", \"goodput\": " << c.r.goodput
            << ", \"reoffered\": " << c.r.reoffered
            << ", \"breaker_trips\": " << c.r.breakerTrips
            << ", \"brownout_entries\": " << c.r.brownoutEntries
            << ", \"brownout_goodput\": " << c.r.brownoutGoodput
            << ", \"brownout_sec\": " << c.r.brownoutSec
            << ", \"p99_sec\": " << c.r.p99
            << ", \"makespan_sec\": " << c.r.makespanSec
            << ", \"recovery_sec\": " << c.recoverySec
            << ", \"post_goodput_rps\": " << c.postGoodputRps << "}"
            << (i + 1 < corr.size() ? "," : "") << "\n";
    }
    out << "    ]\n  }\n}\n";
    // stderr: keep the diffable stdout byte-identical.
    std::cerr << "wrote BENCH_serving.json\n";
}

int
sweep()
{
    bench::banner("Fleet serving under overload: admission control, "
                  "hedged retries, failure-aware degradation");

    // Batch latency measured on the chip simulator: resnet50 on the
    // training-SoC core at anchor batch sizes (SimCache-memoized).
    // The surrogate tier answers off-grid anchors by error-bounded
    // interpolation (predictions are pure functions of the shape, so
    // the curve stays byte-stable), which is what makes the dense
    // 12-anchor curve through batch 16 affordable here.
    soc::TrainingSoc soc910;
    surrogate::SurrogateOptions sur;
    sur.enabled = true;
    runtime::SimSession session(soc910.coreConfig(), {}, nullptr, {},
                                sur);
    const BatchLatencyModel model = BatchLatencyModel::fromNetwork(
        session,
        [](unsigned batch) { return model::zoo::resnet50(batch); },
        BatchLatencyModel::denseAnchors(16),
        session.config().clockGhz);

    const double lb = model.latencySeconds(model.maxBatch());
    const double sat = model.saturationRequestsPerSec(4);
    std::cout << "batch curve: 1 -> "
              << ms(model.latencySeconds(1)) << " ms, "
              << model.maxBatch() << " -> " << ms(lb)
              << " ms; 4-replica saturation "
              << TextTable::num(sat, 1) << " req/s\n";

    std::vector<Cell> cells;
    for (double load : {0.5, 1.0, 1.5, 2.0})
        for (bool faults_on : {false, true})
            for (bool shed : {true, false})
                cells.push_back(
                    runCell(model, load, shed, faults_on));

    // The governed fleet's SLO: the premium deadline.
    const double slo = sweepTiers(lb)[0].deadlineSec;
    printTable(cells, false, slo);
    printTable(cells, true, slo);
    std::cout << "shedding holds p99 near the SLO past saturation; "
                 "the ungoverned fleet's\ntail grows with every "
                 "queued request. failures cost failovers and "
                 "retries,\nnot lost requests.\n";

    // Correlated-chaos sweep: one rack outage against three defense
    // levels. The brownout ladder's cheaper rung is mobilenetV2 on
    // the same core, measured through the same surrogate session.
    const BatchLatencyModel cheap = BatchLatencyModel::fromNetwork(
        session,
        [](unsigned batch) { return model::zoo::mobilenetV2(batch); },
        BatchLatencyModel::denseAnchors(16),
        session.config().clockGhz);
    CorrSetup setup;
    setup.seed = faultSeedFromEnv();
    setup.profile = resilience::faultProfileFromEnv("rack");
    const std::vector<CorrCell> corr =
        correlatedSweep(model, cheap, setup);
    printCorrelated(corr, setup);
    std::cout << "defenses (jitter + breakers + brownout) drain the "
                 "rack outage's backlog\nwhile it is still in "
                 "progress; the undefended fleet stays degraded "
                 "long\nafter the fault clears.\n";
    writeJson(cells, sat, slo, slo + lb, corr, setup);
    return 0;
}

/** Everything one chaos scenario needs, derived from the seed. */
struct Scenario
{
    std::vector<QosTier> tiers;
    std::vector<Request> arrivals;
    BatchLatencyModel model;
    FaultSchedule faults;
    FleetOptions options;
};

Scenario
scenario(std::uint64_t seed)
{
    Scenario sc;
    // Synthetic curve: the chaos experiment tests crash consistency,
    // not the cost model.
    sc.model = BatchLatencyModel::linear(2e-3, 5e-4, 8);
    const double lb = sc.model.latencySeconds(8);
    sc.tiers = sweepTiers(lb);
    sc.options = sweepOptions(lb, true);
    sc.options.warmSpares = 2;
    sc.options.checkpointIntervalSec = 5.0 * lb;

    ArrivalSpec arr;
    arr.seed = seed;
    arr.ratePerSec =
        1.2 * sc.model.saturationRequestsPerSec(sc.options.replicas);
    arr.horizonSec = 0.25;
    arr.burstFactor = 2.0;
    arr.burstPeriodSec = 0.05;
    arr.burstDuty = 0.3;
    sc.arrivals = serving::generateArrivals(arr, sc.tiers);

    FaultSpec spec;
    spec.seed = seed;
    spec.horizonSec = arr.horizonSec;
    spec.cores = sc.options.replicas;
    spec.corePermanentPerSec = 8.0 / (spec.horizonSec * spec.cores);
    spec.coreTransientPerSec = 8.0 / (spec.horizonSec * spec.cores);
    spec.coreRepairSec = 0.02;
    spec.stragglerFraction = 0.5;
    spec.stragglerSlowdown = 1.8;
    sc.faults = FaultSchedule::generate(spec);
    return sc;
}

std::uint64_t
seedFromEnv()
{
    const char *env = std::getenv("ASCEND_CHAOS_SEED");
    return env && *env ? std::strtoull(env, nullptr, 10) : 5;
}

FleetResult
runScenario(Scenario &sc)
{
    return serving::runFleet(sc.arrivals, sc.tiers, sc.model,
                             sc.faults, sc.options);
}

/** Child mode: run with on-disk checkpoints, marking every event. */
int
childMain(std::uint64_t seed, const std::string &ckpt_dir,
          const std::string &out_path)
{
    Scenario sc = scenario(seed);
    sc.options.checkpointDir = ckpt_dir;
    unsigned events = 0;
    sc.options.onEvent = [&events](const std::string &) {
        std::printf("CHAOS-EVENT %u\n", ++events);
        std::fflush(stdout);
        // Give the parent's SIGKILL a window to land mid-run; wall
        // clock never feeds back into simulated results.
        ::usleep(20 * 1000);
    };
    const FleetResult r = runScenario(sc);
    if (!writeFileText(out_path, r.report())) {
        std::fprintf(stderr, "chaos child: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    return 0;
}

/** Fork/exec a child run; returns its pid, stdout on @p out_fd. */
pid_t
spawnChild(const char *self, std::uint64_t seed,
           const std::string &ckpt_dir, const std::string &out_path,
           int *out_fd)
{
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("pipe failed");
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed");
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        const std::string seed_str = std::to_string(seed);
        const char *argv[] = {self,
                              "--run",
                              "--seed",
                              seed_str.c_str(),
                              "--ckpt-dir",
                              ckpt_dir.c_str(),
                              "--out",
                              out_path.c_str(),
                              nullptr};
        ::execv(self, const_cast<char *const *>(argv));
        std::perror("execv");
        ::_exit(127);
    }
    ::close(fds[1]);
    *out_fd = fds[0];
    return pid;
}

/** Read event-marker lines until @p kill_after, then SIGKILL. */
void
killAfterEvents(pid_t pid, int out_fd, unsigned kill_after)
{
    FILE *stream = ::fdopen(out_fd, "r");
    char line[256];
    unsigned seen = 0;
    while (seen < kill_after &&
           std::fgets(line, sizeof(line), stream)) {
        if (std::strncmp(line, "CHAOS-EVENT ", 12) == 0)
            ++seen;
    }
    ::kill(pid, SIGKILL);
    // Drain whatever raced out before the kill took effect.
    while (std::fgets(line, sizeof(line), stream)) {
    }
    std::fclose(stream);
    int status = 0;
    ::waitpid(pid, &status, 0);
}

/** One kill-and-resume experiment; true when the diff is empty. */
bool
chaosExperiment(const char *self, std::uint64_t seed,
                unsigned kill_after, const std::string &golden,
                const std::string &work_dir)
{
    const std::string ckpt_dir = work_dir + "/ckpt";
    const std::string out_path = work_dir + "/out.txt";
    std::error_code ec;
    std::filesystem::remove_all(work_dir, ec);
    std::filesystem::create_directories(ckpt_dir, ec);

    int out_fd = -1;
    const pid_t victim =
        spawnChild(self, seed, ckpt_dir, out_path, &out_fd);
    killAfterEvents(victim, out_fd, kill_after);

    // Resume (or, if the victim finished first, re-run) to completion.
    const pid_t resumed =
        spawnChild(self, seed, ckpt_dir, out_path, &out_fd);
    {
        FILE *stream = ::fdopen(out_fd, "r");
        char line[256];
        while (std::fgets(line, sizeof(line), stream)) {
        }
        std::fclose(stream);
    }
    int status = 0;
    ::waitpid(resumed, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::cerr << "chaos: resume child failed (seed " << seed
                  << ", kill after " << kill_after << ")\n";
        return false;
    }

    std::string resumed_report;
    if (!readFileText(out_path, resumed_report)) {
        std::cerr << "chaos: missing report " << out_path << "\n";
        return false;
    }
    const std::string diff = diffGolden(golden, resumed_report);
    if (!diff.empty()) {
        std::cerr << "chaos: resumed report differs (seed " << seed
                  << ", kill after " << kill_after << "):\n"
                  << diff;
        return false;
    }
    return true;
}

int
chaosMain(const char *self)
{
    const std::uint64_t seed = seedFromEnv();
    const std::string work_dir =
        "serving_chaos_work_" + std::to_string(::getpid());

    // The golden run checkpoints like the children do: the engine
    // logs a "checkpoint seq" event per save, so the uninterrupted
    // report is byte-comparable only under the same persistence
    // config.
    Scenario sc = scenario(seed);
    sc.options.checkpointDir = work_dir + "/golden-ckpt";
    std::error_code ec;
    std::filesystem::create_directories(sc.options.checkpointDir, ec);
    const FleetResult uninterrupted = runScenario(sc);
    const std::string golden = uninterrupted.report();

    unsigned total_events = 0;
    for (char c : uninterrupted.eventLog)
        if (c == '\n')
            ++total_events;
    std::cout << "chaos seed " << seed << ": " << total_events
              << " events, " << uninterrupted.completed
              << " completed / " << uninterrupted.offered
              << " offered\n";
    if (total_events < 3) {
        std::cerr << "chaos: scenario too quiet (" << total_events
                  << " events); pick another seed\n";
        return 1;
    }

    // Kill at >= 3 distinct event boundaries spread across the run.
    std::vector<unsigned> kill_points = {1, total_events / 2,
                                         total_events - 1};
    std::sort(kill_points.begin(), kill_points.end());
    kill_points.erase(
        std::unique(kill_points.begin(), kill_points.end()),
        kill_points.end());

    bool ok = true;
    for (unsigned k : kill_points) {
        const bool pass =
            chaosExperiment(self, seed, k, golden, work_dir);
        std::cout << "  kill after event " << k << ": "
                  << (pass ? "resumed byte-identical" : "MISMATCH")
                  << "\n";
        ok = ok && pass;
    }
    std::filesystem::remove_all(work_dir, ec);
    std::cout << (ok ? "chaos: all kill points byte-identical\n"
                     : "chaos: FAILED\n");
    return ok ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool run_mode = false, chaos_mode = false;
    std::uint64_t seed = seedFromEnv();
    std::string ckpt_dir, out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--run") == 0) {
            run_mode = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos_mode = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--ckpt-dir") == 0 &&
                   i + 1 < argc) {
            ckpt_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else {
            fatal("unknown flag '%s' (--chaos | --run --seed <n> "
                  "--ckpt-dir <d> --out <f>)",
                  argv[i]);
        }
    }
    if (run_mode)
        return childMain(seed, ckpt_dir, out_path);
    if (chaos_mode)
        return chaosMain("/proc/self/exe");
    return sweep();
}
