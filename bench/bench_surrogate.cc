/**
 * @file
 * Surrogate cost-model benchmark: exact-vs-predicted cycle error and
 * wall-clock speedup over five design-space shape families, emitted
 * as a human table plus machine-readable `BENCH_surrogate.json`.
 *
 * Each family is a dense 1-axis sweep (GEMM m, batched-matmul count,
 * conv batch, elementwise size, softmax rows) with every other axis
 * pinned to an on-grid value — the shape of a real design-space
 * exploration, and the regime the surrogate is built for: many
 * queries sharing a small set of bracketing anchor simulations. Both
 * legs run on fresh private SimCaches so neither can feed the other
 * and a warm ASCEND_CACHE_DIR cannot skew the exact-leg timing.
 *
 * Everything on stdout is a pure function of the shapes and the
 * simulator — outcome counts, per-family error percentiles, the
 * budget verdict — so the output byte-diffs clean across
 * ASCEND_THREADS settings (the CI `surrogate` job asserts exactly
 * that). Wall-clock seconds and speedups vary run to run and go to
 * stderr and the JSON only.
 *
 * Exit status is the error contract: nonzero if the worst observed
 * relative cycle error across every predicted query exceeds the
 * configured budget.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "runtime/thread_pool.hh"
#include "soc/training_soc.hh"
#include "surrogate/surrogate.hh"

using namespace ascend;
using Clock = std::chrono::steady_clock;

namespace {

struct Family
{
    std::string name;
    std::vector<model::Layer> layers;
};

/** The five sweep families (distinct shapes only; see file header). */
std::vector<Family>
buildFamilies()
{
    std::vector<Family> fams;

    Family gemm{"gemm-m", {}};
    for (std::uint64_t m = 520; m <= 6144; m += 6)
        gemm.layers.push_back(model::Layer::linear("g", m, 1024, 1024));
    fams.push_back(std::move(gemm));

    Family bmm{"bmm-count", {}};
    for (std::uint64_t c = 12; c <= 400; ++c)
        bmm.layers.push_back(
            model::Layer::batchedMatmul("b", c, 256, 64, 256));
    fams.push_back(std::move(bmm));

    Family conv{"conv-batch", {}};
    for (unsigned b = 32; b <= 288; ++b)
        conv.layers.push_back(
            model::Layer::conv2d("c", b, 64, 16, 16, 128, 3, 1, 1));
    fams.push_back(std::move(conv));

    Family vec{"vector-elems", {}};
    for (std::uint64_t i = 0; i < 300; ++i)
        vec.layers.push_back(model::Layer::elementwise(
            "v", (std::uint64_t(16) << 20) + i * 55903));
    fams.push_back(std::move(vec));

    Family soft{"softmax-rows", {}};
    for (std::uint64_t r = 2600; r <= 24000; r += 37)
        soft.layers.push_back(model::Layer::softmax("s", r, 1024));
    fams.push_back(std::move(soft));

    return fams;
}

struct FamilyStats
{
    std::string name;
    std::size_t queries = 0;
    std::uint64_t predicted = 0;
    std::uint64_t anchors = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t spotChecks = 0;
    double exactSec = 0;
    double surrogateSec = 0;
    std::vector<double> errs; ///< rel cycle error, predicted only
    double speedup() const
    {
        return surrogateSec > 0 ? exactSec / surrogateSec : 0;
    }
};

double
elapsedSec(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Nearest-rank percentile of an unsorted sample (0 when empty). */
double
percentile(std::vector<double> sample, double pct)
{
    if (sample.empty())
        return 0;
    std::sort(sample.begin(), sample.end());
    const double rank = std::ceil(pct / 100.0 * double(sample.size()));
    const std::size_t idx = std::min(
        sample.size() - 1,
        std::size_t(std::max(rank - 1, 0.0)));
    return sample[idx];
}

/** Run one family through an exact leg and a surrogate leg. */
FamilyStats
runFamily(const Family &family, const soc::TrainingSoc &soc,
          const surrogate::SurrogateOptions &sur_opts)
{
    FamilyStats fs;
    fs.name = family.name;
    fs.queries = family.layers.size();
    const std::size_t n = family.layers.size();

    std::vector<core::SimResult> exactRes(n);
    {
        const runtime::SimSession exact(
            soc.coreConfig(), {},
            std::make_shared<runtime::SimCache>(), {},
            surrogate::SurrogateOptions{});
        const auto start = Clock::now();
        runtime::parallelFor(n, [&](std::size_t i) {
            exactRes[i] = exact.runLayer(family.layers[i]);
        });
        fs.exactSec = elapsedSec(start);
    }

    std::vector<core::SimResult> surRes(n);
    std::vector<surrogate::Outcome> outcome(n);
    {
        const runtime::SimSession pred(
            soc.coreConfig(), {},
            std::make_shared<runtime::SimCache>(), {}, sur_opts);
        const auto start = Clock::now();
        runtime::parallelFor(n, [&](std::size_t i) {
            surRes[i] = pred.runLayer(family.layers[i], &outcome[i]);
        });
        fs.surrogateSec = elapsedSec(start);
    }

    for (std::size_t i = 0; i < n; ++i) {
        switch (outcome[i]) {
          case surrogate::Outcome::Predicted:
            ++fs.predicted;
            break;
          case surrogate::Outcome::Anchor:
            ++fs.anchors;
            break;
          case surrogate::Outcome::SpotCheck:
            ++fs.spotChecks;
            break;
          case surrogate::Outcome::FallbackSmall:
          case surrogate::Outcome::FallbackHull:
          case surrogate::Outcome::FallbackBudget:
            ++fs.fallbacks;
            break;
          case surrogate::Outcome::Disabled:
          case surrogate::Outcome::CacheHit:
            break;
        }
        const double ec = double(exactRes[i].totalCycles);
        if (outcome[i] == surrogate::Outcome::Predicted) {
            const double pc = double(surRes[i].totalCycles);
            fs.errs.push_back(std::abs(pc - ec) /
                              std::max(ec, 1.0));
        } else {
            // Every non-predicted outcome is the exact simulator's
            // answer and must match the exact leg bit for bit.
            simAssert(surRes[i].totalCycles ==
                          exactRes[i].totalCycles,
                      "surrogate fallback diverged from exact leg");
        }
    }
    return fs;
}

void
writeJson(const std::vector<FamilyStats> &fams, double err_budget,
          double geomean, double max_err,
          const std::vector<double> &all_errs, unsigned threads)
{
    std::ofstream out("BENCH_surrogate.json");
    out << "{\n  \"err_budget\": " << err_budget
        << ",\n  \"threads\": " << threads
        << ",\n  \"families\": [\n";
    for (std::size_t i = 0; i < fams.size(); ++i) {
        const FamilyStats &f = fams[i];
        out << "    {\"name\": \"" << f.name
            << "\", \"queries\": " << f.queries
            << ", \"predicted\": " << f.predicted
            << ", \"anchors\": " << f.anchors
            << ", \"fallbacks\": " << f.fallbacks
            << ", \"spot_checks\": " << f.spotChecks
            << ", \"exact_seconds\": " << f.exactSec
            << ", \"surrogate_seconds\": " << f.surrogateSec
            << ", \"speedup\": " << f.speedup()
            << ", \"max_rel_err\": " << percentile(f.errs, 100)
            << ", \"err_p50\": " << percentile(f.errs, 50)
            << ", \"err_p99\": " << percentile(f.errs, 99) << "}"
            << (i + 1 < fams.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"error_cdf\": [\n";
    for (int pct = 10; pct <= 100; pct += 10)
        out << "    {\"pct\": " << pct
            << ", \"rel_err\": " << percentile(all_errs, pct) << "}"
            << (pct < 100 ? "," : "") << "\n";
    out << "  ],\n  \"overall\": {\"speedup_geomean\": " << geomean
        << ", \"max_rel_err\": " << max_err << ", \"within_budget\": "
        << (max_err <= err_budget ? "true" : "false") << "}\n}\n";
}

} // anonymous namespace

int
main()
{
    bench::banner("Surrogate cost model: error CDF and speedup");

    surrogate::SurrogateOptions surOpts =
        surrogate::SurrogateOptions::fromEnv();
    surOpts.enabled = true;

    soc::TrainingSoc soc910;
    const std::vector<Family> families = buildFamilies();

    std::vector<FamilyStats> stats;
    std::vector<double> allErrs;
    double logSum = 0;
    for (const Family &f : families) {
        stats.push_back(runFamily(f, soc910, surOpts));
        const FamilyStats &fs = stats.back();
        allErrs.insert(allErrs.end(), fs.errs.begin(), fs.errs.end());
        logSum += std::log(std::max(fs.speedup(), 1e-9));
        std::cerr << fs.name << ": "
                  << TextTable::num(fs.speedup(), 1) << "x ("
                  << TextTable::num(fs.exactSec, 3) << "s exact, "
                  << TextTable::num(fs.surrogateSec, 3)
                  << "s surrogate)\n";
    }
    const double geomean = std::exp(logSum / double(stats.size()));
    const double maxErr = percentile(allErrs, 100);

    TextTable t("surrogate accuracy per family (budget " +
                TextTable::num(100 * surOpts.errBudget, 2) + "%)");
    t.header({"family", "queries", "predicted", "anchors",
              "fallbacks", "spot", "p50 err%", "p99 err%",
              "max err%"});
    for (const FamilyStats &f : stats)
        t.row({f.name, TextTable::num(std::uint64_t(f.queries)),
               TextTable::num(f.predicted),
               TextTable::num(f.anchors),
               TextTable::num(f.fallbacks),
               TextTable::num(f.spotChecks),
               TextTable::num(100 * percentile(f.errs, 50), 3),
               TextTable::num(100 * percentile(f.errs, 99), 3),
               TextTable::num(100 * percentile(f.errs, 100), 3)});
    t.print(std::cout);

    const bool withinBudget = maxErr <= surOpts.errBudget;
    std::cout << "max rel cycle error "
              << TextTable::num(100 * maxErr, 3) << "% vs budget "
              << TextTable::num(100 * surOpts.errBudget, 2) << "%: "
              << (withinBudget ? "PASS" : "FAIL") << "\n";

    std::cerr << "speedup geomean: " << TextTable::num(geomean, 1)
              << "x\n";
    writeJson(stats, surOpts.errBudget, geomean, maxErr, allErrs,
              runtime::ThreadPool::configuredThreads());
    std::cout << "wrote BENCH_surrogate.json\n";
    return withinBudget ? 0 : 1;
}
