/**
 * @file
 * Shared helpers for the table/figure regeneration benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it prints the paper's reported values next to the values this
 * reproduction measures, so the shape comparison is visible in one
 * place. EXPERIMENTS.md records the same numbers.
 *
 * The benches drive simulation through runtime::SimSession (memoized
 * + thread-pooled); with ASCEND_SIM_STATS=1 every banner-using bench
 * prints an aligned table of the process-wide cache counters (with
 * hit rate and disk load/store counts) plus per-scope wall-clock
 * timings at exit. The table goes to stderr so the golden-diffed
 * stdout stays byte-identical across runs and thread counts. Note
 * the counters (not the simulation results) can vary with
 * ASCEND_THREADS: concurrent misses on one key may both simulate.
 */

#ifndef ASCEND_BENCH_BENCH_UTIL_HH
#define ASCEND_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/golden.hh"
#include "common/table.hh"
#include "runtime/perf_stats.hh"
#include "runtime/profile.hh"
#include "runtime/sim_session.hh"
#include "runtime/thread_pool.hh"

namespace ascend {
namespace bench {

/** Print a banner naming the experiment. */
inline void
banner(const std::string &what)
{
    // First banner wires up the ASCEND_SIM_STATS=1 observability
    // hook: one aligned stats table on exit, after all tables.
    static const bool registered = [] {
        const char *env = std::getenv("ASCEND_SIM_STATS");
        if (env && std::string(env) == "1") {
            // Construct the process cache *before* registering the
            // handler: statics destruct in reverse order, so the
            // report then prints while the cache is still alive.
            runtime::SimSession::processCache();
            std::atexit([] {
                std::cerr << runtime::simStatsReport(
                    runtime::SimSession::processCache()->stats(),
                    runtime::ThreadPool::configuredThreads());
            });
        }
        return true;
    }();
    (void)registered;
    std::cout << "\n=================================================\n"
              << what << "\n"
              << "=================================================\n";
}

/**
 * Golden-diff helper: compare @p actual against the file at
 * @p goldenPath. Trailing-whitespace normalization happens here, in
 * one place, for every bench and CI check — individual benches must
 * not re-normalize. On mismatch prints a per-line diff to stderr and
 * returns false; a missing golden file is also a failure (with a
 * hint to regenerate).
 */
inline bool
checkGolden(const std::string &actual, const std::string &goldenPath)
{
    std::string expected;
    if (!readFileText(goldenPath, expected)) {
        std::cerr << "golden: cannot read " << goldenPath
                  << " (regenerate by redirecting this bench's stdout"
                     " there)\n";
        return false;
    }
    const std::string diff = diffGolden(expected, actual);
    if (diff.empty())
        return true;
    std::cerr << "golden mismatch vs " << goldenPath << ":\n" << diff;
    return false;
}

/** Print a fusion-group ratio series (Figs. 4-8 format). */
inline void
printRatioSeries(const std::string &title,
                 const std::vector<runtime::GroupProfile> &groups)
{
    TextTable table(title);
    table.header({"#", "operator", "cube busy", "vec busy", "cube/vec"});
    unsigned idx = 0;
    unsigned above_one = 0;
    for (const auto &g : groups) {
        if (g.cubeVectorRatio() > 1.0)
            ++above_one;
        table.row({TextTable::num(std::uint64_t(idx++)), g.name,
                   TextTable::num(std::uint64_t(g.cubeBusy)),
                   TextTable::num(std::uint64_t(g.vectorBusy)),
                   TextTable::num(g.cubeVectorRatio(), 2)});
    }
    table.print(std::cout);
    std::cout << above_one << "/" << groups.size()
              << " operators have cube/vector ratio > 1\n";
}

/** Print an L1 bandwidth profile (Fig. 9 format). */
inline void
printBandwidthSeries(const std::string &title,
                     const std::vector<runtime::GroupProfile> &groups)
{
    TextTable table(title);
    table.header({"#", "operator", "L1 read bits/cycle",
                  "L1 write bits/cycle"});
    unsigned idx = 0;
    double max_read = 0, max_write = 0;
    for (const auto &g : groups) {
        max_read = std::max(max_read, g.l1ReadBitsPerCycle());
        max_write = std::max(max_write, g.l1WriteBitsPerCycle());
        table.row({TextTable::num(std::uint64_t(idx++)), g.name,
                   TextTable::num(g.l1ReadBitsPerCycle(), 0),
                   TextTable::num(g.l1WriteBitsPerCycle(), 0)});
    }
    table.print(std::cout);
    std::cout << "max read " << TextTable::num(max_read, 0)
              << " bits/cycle, max write " << TextTable::num(max_write, 0)
              << " bits/cycle (paper bound: read <= 4096, write <= 2048)\n";
}

} // namespace bench
} // namespace ascend

#endif // ASCEND_BENCH_BENCH_UTIL_HH
