/**
 * @file
 * Section 3.2 ablation: sparsity support. "The core is optimized for
 * structured sparsity in DNN models. Thus, the computing power
 * consumption can be further reduced under (general) sparsity."
 *
 * The bench sweeps weight density for ResNet50 on the Ascend-Lite
 * core, comparing unstructured pruning (ZVC compression: bandwidth
 * and storage savings only) against structured pruning (which also
 * skips cube compute), and reports cycle, traffic and energy-proxy
 * reductions.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/sparsity.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

struct Sample
{
    Cycles cycles;
    Bytes extWeights;
    Cycles cubeBusy;
};

Sample
run(double density, bool structured)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    compiler::CompileOptions options;
    options.sparsity.weightDensity = density;
    options.sparsity.structured = structured;
    runtime::SimSession session(cfg, options);
    const auto runs = session.runInference(model::zoo::resnet50(1));
    Sample s{0, 0, 0};
    for (const auto &r : runs) {
        s.cycles += r.result.totalCycles;
        s.extWeights += r.result.bus(isa::Bus::ExtB);
        s.cubeBusy += r.result.pipe(isa::Pipe::Cube).busyCycles;
    }
    return s;
}

} // anonymous namespace

int
main()
{
    bench::banner("Section 3.2 ablation: sparsity on Ascend-Lite "
                  "(ResNet50 b=1)");

    // One point per (density, mode); dense first. Every point is an
    // independent compile + simulation, so the sweep runs through the
    // pool and the table prints from the index-stable results.
    const std::vector<std::pair<double, bool>> points = {
        {1.0, false}, {0.75, false}, {0.75, true}, {0.5, false},
        {0.5, true},  {0.25, false}, {0.25, true}};
    const auto samples = runtime::parallelMap(
        points, [](const std::pair<double, bool> &p) {
            return run(p.first, p.second);
        });
    const Sample &dense = samples.front();

    TextTable t("weight-density sweep");
    t.header({"density", "mode", "cycles", "speedup", "weight traffic",
              "traffic saved %", "cube busy saved %"});
    t.row({"1.00", "dense", TextTable::num(std::uint64_t(dense.cycles)),
           "1.00x", formatBytes(dense.extWeights), "0.0", "0.0"});
    for (std::size_t i = 1; i < points.size(); ++i) {
        const Sample &s = samples[i];
        t.row({TextTable::num(points[i].first, 2),
               points[i].second ? "structured (N:M)"
                                : "unstructured (ZVC)",
               TextTable::num(std::uint64_t(s.cycles)),
               TextTable::num(double(dense.cycles) / s.cycles, 2) + "x",
               formatBytes(s.extWeights),
               TextTable::num(100.0 * (1.0 - double(s.extWeights) /
                                                 dense.extWeights), 1),
               TextTable::num(100.0 * (1.0 - double(s.cubeBusy) /
                                                 dense.cubeBusy), 1)});
    }
    t.print(std::cout);

    std::cout << "ZVC compression ratio at density 0.5 (fp16): "
              << TextTable::num(core::Zvc::ratio(DataType::Fp16, 0.5), 2)
              << "; structured 2:4 pruning additionally halves cube "
                 "time\n(the paper's 'computing power consumption can "
                 "be further reduced under sparsity').\n";
    return 0;
}
