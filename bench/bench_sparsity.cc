/**
 * @file
 * Section 3.2 ablation: sparsity support. "The core is optimized for
 * structured sparsity in DNN models. Thus, the computing power
 * consumption can be further reduced under (general) sparsity."
 *
 * The bench sweeps weight density for ResNet50 on the Ascend-Lite
 * core, comparing unstructured pruning (ZVC compression: bandwidth
 * and storage savings only) against structured pruning (which also
 * skips cube compute), and reports cycle, traffic and energy-proxy
 * reductions.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/sparsity.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

struct Sample
{
    Cycles cycles;
    Bytes extWeights;
    Cycles cubeBusy;
};

Sample
run(double density, bool structured)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Lite);
    compiler::CompileOptions options;
    options.sparsity.weightDensity = density;
    options.sparsity.structured = structured;
    compiler::Profiler profiler(cfg, options);
    const auto runs = profiler.runInference(model::zoo::resnet50(1));
    Sample s{0, 0, 0};
    for (const auto &r : runs) {
        s.cycles += r.result.totalCycles;
        s.extWeights += r.result.bus(isa::Bus::ExtB);
        s.cubeBusy += r.result.pipe(isa::Pipe::Cube).busyCycles;
    }
    return s;
}

} // anonymous namespace

int
main()
{
    bench::banner("Section 3.2 ablation: sparsity on Ascend-Lite "
                  "(ResNet50 b=1)");

    const Sample dense = run(1.0, false);
    TextTable t("weight-density sweep");
    t.header({"density", "mode", "cycles", "speedup", "weight traffic",
              "traffic saved %", "cube busy saved %"});
    auto row = [&](double density, bool structured) {
        const Sample s = run(density, structured);
        t.row({TextTable::num(density, 2),
               structured ? "structured (N:M)" : "unstructured (ZVC)",
               TextTable::num(std::uint64_t(s.cycles)),
               TextTable::num(double(dense.cycles) / s.cycles, 2) + "x",
               formatBytes(s.extWeights),
               TextTable::num(100.0 * (1.0 - double(s.extWeights) /
                                                 dense.extWeights), 1),
               TextTable::num(100.0 * (1.0 - double(s.cubeBusy) /
                                                 dense.cubeBusy), 1)});
    };
    t.row({"1.00", "dense", TextTable::num(std::uint64_t(dense.cycles)),
           "1.00x", formatBytes(dense.extWeights), "0.0", "0.0"});
    for (double d : {0.75, 0.5, 0.25}) {
        row(d, false);
        row(d, true);
    }
    t.print(std::cout);

    std::cout << "ZVC compression ratio at density 0.5 (fp16): "
              << TextTable::num(core::Zvc::ratio(DataType::Fp16, 0.5), 2)
              << "; structured 2:4 pruning additionally halves cube "
                 "time\n(the paper's 'computing power consumption can "
                 "be further reduced under sparsity').\n";
    return 0;
}
