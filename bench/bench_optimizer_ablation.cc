/**
 * @file
 * Training ablation: optimizer choice on the Ascend 910. The paper's
 * Fig. 5 point — training shifts work toward the vector unit — grows
 * stronger with stateful optimizers: momentum and Adam add fp32
 * state traffic and extra elementwise passes per weight.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/zoo.hh"
#include "soc/training_soc.hh"

using namespace ascend;

int
main()
{
    soc::TrainingSoc soc910;
    const auto resnet = model::zoo::resnet50(4);
    const auto bert = model::zoo::bertBase(2, 128);

    bench::banner("Optimizer ablation on Ascend 910 (per-step cost)");
    TextTable t("SGD vs momentum vs Adam");
    t.header({"network", "optimizer", "step (ms)", "vs SGD",
              "LLC traffic", "HBM traffic"});
    for (const auto *net : {&resnet, &bert}) {
        double sgd_sec = 0;
        for (auto opt : {model::OptimizerKind::Sgd,
                         model::OptimizerKind::Momentum,
                         model::OptimizerKind::Adam}) {
            const auto step = soc910.trainStep(*net, opt);
            if (opt == model::OptimizerKind::Sgd)
                sgd_sec = step.seconds;
            t.row({net->name, model::toString(opt),
                   TextTable::num(step.seconds * 1e3, 2),
                   TextTable::num(step.seconds / sgd_sec, 2) + "x",
                   formatBytes(step.llcTrafficBytes),
                   formatBytes(step.hbmTrafficBytes)});
        }
    }
    t.print(std::cout);
    std::cout << "Adam's two fp32 moment tensors quadruple the "
                 "per-weight state footprint, so its\noverhead is "
                 "largest for parameter-heavy models - the duplex "
                 "UB-vector datapath of\nSection 3.1 exists exactly "
                 "for this optimizer-bound tail of training.\n";
    return 0;
}
