/**
 * @file
 * Figure 8: cube/vector execution-time ratio per operator for the
 * always-on gesture-inference CNN on the Ascend-Tiny configuration
 * (cube 1024 int8 OPS/cycle, vector 32 B).
 *
 * Expected shape (paper): the ratio is greater than 1 for all
 * operators, validating the Tiny configuration.
 */

#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

int
main()
{
    runtime::SimSession session(
        arch::makeCoreConfig(arch::CoreVersion::Tiny));

    bench::banner("Figure 8: cube/vector ratio, Gesture NN inference "
                  "(cube 1024 int8 OPS/cy, vector 32 B)");
    const auto net = model::zoo::gestureNet(1);
    bench::printRatioSeries(
        "Gesture NN b=1 int8",
        runtime::fusionGroups(session.runInference(net)));
    return 0;
}
