/**
 * @file
 * Table 6: the memory wall and I/O wall of the Ascend 910.
 *
 * The paper anchors the table at the cube engine's raw operand
 * demand: 256 TFLOPS at ~8 bytes touched per FLOP when nothing is
 * reused = 2048 TB/s, then descends the hierarchy. This bench prints
 * that derivation from the configuration presets next to the paper's
 * ratios.
 *
 * Expected shape (paper): L1 ~1/10, LLC ~1/100, HBM ~1/2000, intra
 * server ~1/40000, inter server ~1/200000.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "cluster/collective.hh"
#include "soc/training_soc.hh"

using namespace ascend;

int
main()
{
    soc::TrainingSoc soc910;
    const auto &core = soc910.coreConfig();
    const auto &cfg = soc910.config();
    const unsigned cores = cfg.aiCores;
    const double ghz = core.clockGhz * 1e9;

    // Raw operand demand with zero reuse: two fp16 inputs plus the
    // fp32 accumulator read-modify-write per MAC = 12 bytes per MAC =
    // ~8 bytes per FLOP (the paper quotes 2048 TB/s for 256 TFLOPS,
    // i.e. exactly 8 B/FLOP).
    const double peak_flops = soc910.peakFlopsFp16();
    const double cube_demand = peak_flops * 8.0;

    const double l0 = cube_demand; // L0 is sized to feed the cube
    const double l1 = double(core.busABytesPerCycle +
                             core.busBBytesPerCycle +
                             core.busUbBytesPerCycle) * ghz * cores;
    const double llc = cfg.llcBandwidth;
    const double hbm = cfg.hbm.bandwidthBytesPerSec;

    cluster::ClusterConfig cl;
    const double intra =
        cl.server.hccsBytesPerSec + cl.server.pcieBytesPerSec;
    const double inter = cl.netBytesPerSec;

    bench::banner("Table 6: memory wall and I/O wall (Ascend 910)");
    TextTable t("modelled | paper ratio");
    t.header({"level", "bandwidth", "ratio to cube", "paper ratio"});
    auto row = [&](const char *name, double bw, const char *paper) {
        t.row({name, formatRate(bw),
               "1/" + TextTable::num(std::uint64_t(cube_demand / bw)),
               paper});
    };
    t.row({"Cube engine demand (256 TFLOPS x 8 B/FLOP)",
           formatRate(cube_demand), "1", "1 (2048 TB/s)"});
    row("L0 memory", l0, "1/1");
    row("L1 memory (A+B+UB buses x 32 cores)", l1, "1/10");
    row("LLC memory", llc, "1/100 (expected), 1/512 (actual 4 TB/s)");
    row("HBM memory", hbm, "1/2000");
    row("Intra AI server (HCCS+PCIe)", intra, "1/40000");
    row("Inter AI server (100 Gbps)", inter, "1/200000");
    t.print(std::cout);

    std::cout << "Each level down relies on data reuse in the level "
                 "above to bridge roughly\none order of magnitude "
                 "(Section 4.1); the multi-layer hierarchy is what\n"
                 "closes the >2000x gap between cube demand and HBM.\n";
    return 0;
}
