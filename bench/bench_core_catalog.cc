/**
 * @file
 * Tables 1, 2, 5 and 10: the core lineup, the operation-to-unit
 * mapping, the architecture design parameters, and the published
 * business numbers. These are configuration tables: the bench prints
 * them from the CoreConfig presets so any drift between the code and
 * the paper's design points is immediately visible.
 */

#include <iostream>

#include "arch/unit_model.hh"
#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

int
main()
{
    bench::banner("Table 1: Ascend cores, applications, networks");
    TextTable t1;
    t1.header({"core", "inf/tra", "applications", "typical networks"});
    t1.row({"Ascend-Tiny", "Inference", "IoT and smart sensors",
            "face/gesture detection"});
    t1.row({"Ascend-Lite", "Inference", "IP cameras, smartphones",
            "MobileNet, ISP NNs"});
    t1.row({"Ascend-Mini", "Inference", "drones, robots, embedded AI",
            "ResNet, VGG"});
    t1.row({"Ascend", "Inf+Tra", "autonomous driving, smart city, cloud",
            "MaskRCNN, Siamese, Pointsnet"});
    t1.row({"Ascend-Max", "Tra+Inf", "HPC AI, cloud training",
            "BERT, ResNet, Wide&Deep"});
    t1.print(std::cout);

    bench::banner("Table 2: operations per computing unit");
    TextTable t2;
    t2.header({"unit", "typical operations", "ISA pipe"});
    t2.row({"Scalar", "control, scalar computation", "scalar"});
    t2.row({"Vector", "normalize, activation, format transfer, CV ops",
            "vector"});
    t2.row({"Cube", "convolution, FC, MatMul", "cube"});
    t2.print(std::cout);

    bench::banner("Table 5: key architecture design parameters");
    TextTable t5;
    t5.header({"core", "clock", "cube (fp16-eq)", "FLOPs/cy", "vector",
               "busA GB/s", "busB GB/s", "busUB GB/s", "LLC GB/s"});
    for (auto v : {arch::CoreVersion::Max, arch::CoreVersion::Std,
                   arch::CoreVersion::Mini, arch::CoreVersion::Lite,
                   arch::CoreVersion::Tiny}) {
        const auto c = arch::makeCoreConfig(v);
        auto gbps = [&](Bytes per_cycle) {
            return TextTable::num(double(per_cycle) * c.clockGhz, 0);
        };
        t5.row({c.name, TextTable::num(c.clockGhz, 2) + " GHz",
                std::to_string(c.cube.m0) + "x" +
                    std::to_string(c.cube.k0) + "x" +
                    std::to_string(c.cube.n0),
                TextTable::num(std::uint64_t(c.cube.flopsPerCycle())),
                TextTable::num(std::uint64_t(c.vectorWidthBytes)) + " B",
                gbps(c.busABytesPerCycle), gbps(c.busBBytesPerCycle),
                gbps(c.busUbBytesPerCycle), gbps(c.busExtBytesPerCycle)});
    }
    t5.print(std::cout);
    std::cout << "(paper: 8192 FLOPS/cy + 256 B for Max/Ascend/Mini, "
                 "2048 + 128 B for Lite,\n 1024 int8 + 32 B for Tiny; "
                 "A 4 TB/s, B/UB 2 TB/s; LLC 94/111/96/38.4 GB/s)\n";

    bench::banner("Modelled core area per design point (7 nm)");
    TextTable ta;
    ta.header({"core", "area mm2 (modelled)"});
    for (auto v : {arch::CoreVersion::Max, arch::CoreVersion::Lite,
                   arch::CoreVersion::Tiny}) {
        const auto c = arch::makeCoreConfig(v);
        ta.row({c.name,
                TextTable::num(arch::modelCoreAreaMm2(c,
                                                      arch::TechNode::N7),
                               2)});
    }
    ta.print(std::cout);

    // Table 1 sanity check: actually run each core's typical network
    // through the cycle-level simulator. Five independent design
    // points, so the sweep goes through the pool; rows print in
    // catalog order from the index-stable results.
    bench::banner("Table 1 cross-check: flagship network per core "
                  "(batch 1, simulated)");
    struct Flagship
    {
        arch::CoreVersion core;
        model::Network net;
    };
    const std::vector<Flagship> flagships = {
        {arch::CoreVersion::Max, model::zoo::bertBase(1, 128)},
        {arch::CoreVersion::Std, model::zoo::siameseTracker(1)},
        {arch::CoreVersion::Mini, model::zoo::resnet50(1)},
        {arch::CoreVersion::Lite, model::zoo::mobilenetV2(1)},
        {arch::CoreVersion::Tiny, model::zoo::gestureNet(1)},
    };
    struct FlagshipRun
    {
        std::string coreName;
        double clockGhz;
        Flops peakPerCycle;
        Cycles total;
        Flops flops;
    };
    const auto sims =
        runtime::parallelMap(flagships, [](const Flagship &f) {
            const auto cfg = arch::makeCoreConfig(f.core);
            runtime::SimSession session(cfg);
            const auto runs = session.runInference(f.net);
            Flops flops = 0;
            for (const auto &run : runs)
                flops += run.result.totalFlops;
            return FlagshipRun{cfg.name, cfg.clockGhz,
                               cfg.cube.flopsPerCycle(),
                               runtime::totalCycles(runs), flops};
        });
    TextTable tf;
    tf.header({"core", "network", "total cycles", "latency (ms)",
               "cube util %"});
    for (std::size_t i = 0; i < flagships.size(); ++i) {
        const auto &s = sims[i];
        const double ms =
            double(s.total) / (s.clockGhz * 1e9) * 1e3;
        const double util =
            s.total ? double(s.flops) /
                          (double(s.peakPerCycle) * double(s.total))
                    : 0.0;
        tf.row({s.coreName, flagships[i].net.name,
                TextTable::num(std::uint64_t(s.total)),
                TextTable::num(ms, 2),
                TextTable::num(100 * util, 1)});
    }
    tf.print(std::cout);
    std::cout << "(Each core meets its Table 1 deployment class: "
                 "sub-ms always-on inference on\nTiny, mobile vision "
                 "on Lite, datacenter-class throughput on Max.)\n";

    bench::banner("Table 10: business numbers (as published, 2020)");
    TextTable t10;
    t10.header({"product", "release", "quantity"});
    t10.row({"Ascend 910", "2019", "~0.2 M"});
    t10.row({"Mobile SoCs with Ascend cores", "2019", "> 100 M"});
    t10.row({"Ascend 610", "2020", "n/a"});
    t10.row({"Ascend 310", "2018", "~1 M"});
    t10.print(std::cout);
    return 0;
}
