/**
 * @file
 * Tables 1, 2, 5 and 10: the core lineup, the operation-to-unit
 * mapping, the architecture design parameters, and the published
 * business numbers. These are configuration tables: the bench prints
 * them from the CoreConfig presets so any drift between the code and
 * the paper's design points is immediately visible.
 */

#include <iostream>

#include "arch/unit_model.hh"
#include "bench/bench_util.hh"

using namespace ascend;

int
main()
{
    bench::banner("Table 1: Ascend cores, applications, networks");
    TextTable t1;
    t1.header({"core", "inf/tra", "applications", "typical networks"});
    t1.row({"Ascend-Tiny", "Inference", "IoT and smart sensors",
            "face/gesture detection"});
    t1.row({"Ascend-Lite", "Inference", "IP cameras, smartphones",
            "MobileNet, ISP NNs"});
    t1.row({"Ascend-Mini", "Inference", "drones, robots, embedded AI",
            "ResNet, VGG"});
    t1.row({"Ascend", "Inf+Tra", "autonomous driving, smart city, cloud",
            "MaskRCNN, Siamese, Pointsnet"});
    t1.row({"Ascend-Max", "Tra+Inf", "HPC AI, cloud training",
            "BERT, ResNet, Wide&Deep"});
    t1.print(std::cout);

    bench::banner("Table 2: operations per computing unit");
    TextTable t2;
    t2.header({"unit", "typical operations", "ISA pipe"});
    t2.row({"Scalar", "control, scalar computation", "scalar"});
    t2.row({"Vector", "normalize, activation, format transfer, CV ops",
            "vector"});
    t2.row({"Cube", "convolution, FC, MatMul", "cube"});
    t2.print(std::cout);

    bench::banner("Table 5: key architecture design parameters");
    TextTable t5;
    t5.header({"core", "clock", "cube (fp16-eq)", "FLOPs/cy", "vector",
               "busA GB/s", "busB GB/s", "busUB GB/s", "LLC GB/s"});
    for (auto v : {arch::CoreVersion::Max, arch::CoreVersion::Std,
                   arch::CoreVersion::Mini, arch::CoreVersion::Lite,
                   arch::CoreVersion::Tiny}) {
        const auto c = arch::makeCoreConfig(v);
        auto gbps = [&](Bytes per_cycle) {
            return TextTable::num(double(per_cycle) * c.clockGhz, 0);
        };
        t5.row({c.name, TextTable::num(c.clockGhz, 2) + " GHz",
                std::to_string(c.cube.m0) + "x" +
                    std::to_string(c.cube.k0) + "x" +
                    std::to_string(c.cube.n0),
                TextTable::num(std::uint64_t(c.cube.flopsPerCycle())),
                TextTable::num(std::uint64_t(c.vectorWidthBytes)) + " B",
                gbps(c.busABytesPerCycle), gbps(c.busBBytesPerCycle),
                gbps(c.busUbBytesPerCycle), gbps(c.busExtBytesPerCycle)});
    }
    t5.print(std::cout);
    std::cout << "(paper: 8192 FLOPS/cy + 256 B for Max/Ascend/Mini, "
                 "2048 + 128 B for Lite,\n 1024 int8 + 32 B for Tiny; "
                 "A 4 TB/s, B/UB 2 TB/s; LLC 94/111/96/38.4 GB/s)\n";

    bench::banner("Modelled core area per design point (7 nm)");
    TextTable ta;
    ta.header({"core", "area mm2 (modelled)"});
    for (auto v : {arch::CoreVersion::Max, arch::CoreVersion::Lite,
                   arch::CoreVersion::Tiny}) {
        const auto c = arch::makeCoreConfig(v);
        ta.row({c.name,
                TextTable::num(arch::modelCoreAreaMm2(c,
                                                      arch::TechNode::N7),
                               2)});
    }
    ta.print(std::cout);

    bench::banner("Table 10: business numbers (as published, 2020)");
    TextTable t10;
    t10.header({"product", "release", "quantity"});
    t10.row({"Ascend 910", "2019", "~0.2 M"});
    t10.row({"Mobile SoCs with Ascend cores", "2019", "> 100 M"});
    t10.row({"Ascend 610", "2020", "n/a"});
    t10.row({"Ascend 310", "2018", "~1 M"});
    t10.print(std::cout);
    return 0;
}
