/**
 * @file
 * Section 2.4 ablation: resource matching of the vector unit.
 *
 * The paper's configuration principle sizes the vector unit so that
 * vector time hides under cube time for the target workloads. This
 * ablation sweeps the vector width for each core's flagship network
 * and reports end-to-end cycles and the fraction of operators whose
 * cube/vector ratio exceeds 1 — showing why the shipped widths
 * (256 B for Max-class, 128 B for Lite, 32 B for Tiny) sit where
 * they do.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

void
sweepWidths(arch::CoreVersion version, const model::Network &net,
            Bytes shipped_width)
{
    auto base = arch::makeCoreConfig(version);
    bench::banner(std::string("Vector width sweep: ") + net.name +
                  " on " + base.name);
    TextTable t("ablation");
    t.header({"vector width", "total cycles", "slowdown vs widest",
              "ops with ratio > 1 %", "shipped?"});

    // Each width is an independent config: sweep the points through
    // the pool and print rows in width order afterwards.
    const std::vector<Bytes> widths = {shipped_width / 4,
                                       shipped_width / 2, shipped_width,
                                       shipped_width * 2,
                                       shipped_width * 4};
    struct Point
    {
        Cycles total;
        double abovePct;
    };
    const auto points = runtime::parallelMap(widths, [&](Bytes w) {
        auto cfg = base;
        cfg.vectorWidthBytes = w;
        runtime::SimSession session(cfg);
        const auto runs = session.runInference(net);
        const auto groups = runtime::fusionGroups(runs);
        unsigned n = 0;
        for (const auto &g : groups)
            if (g.cubeVectorRatio() > 1.0)
                ++n;
        return Point{runtime::totalCycles(runs),
                     groups.empty() ? 0 : 100.0 * n / groups.size()};
    });
    const Cycles best = points.back().total;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        t.row({TextTable::num(std::uint64_t(widths[i])) + " B",
               TextTable::num(std::uint64_t(points[i].total)),
               TextTable::num(double(points[i].total) / double(best), 2) +
                   "x",
               TextTable::num(points[i].abovePct, 0),
               widths[i] == shipped_width ? "<= shipped" : ""});
    }
    t.print(std::cout);
}

} // anonymous namespace

int
main()
{
    sweepWidths(arch::CoreVersion::Max,
                model::zoo::bert("bert_large_2l", 1, 384, 1024, 2, 16,
                                 4096),
                256);
    sweepWidths(arch::CoreVersion::Lite, model::zoo::mobilenetV2(1), 128);
    sweepWidths(arch::CoreVersion::Tiny, model::zoo::gestureNet(1), 32);

    std::cout << "\nThe shipped width is the knee: halving it inflates "
                 "end-to-end cycles because\nvector work stops hiding "
                 "under cube work, while doubling it buys little.\n";
    return 0;
}
