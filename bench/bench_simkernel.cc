/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: core
 * scheduling throughput, compiler lowering speed, LLC access rate,
 * and mesh-NoC cycle rate. These guard the simulator's own
 * performance (the table/figure benches above depend on it staying
 * fast enough to sweep).
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "compiler/layer_compiler.hh"
#include "des/kernel.hh"
#include "core/core_sim.hh"
#include "memory/llc.hh"
#include "model/zoo.hh"
#include "noc/mesh.hh"
#include "runtime/sim_cache.hh"
#include "runtime/sim_session.hh"
#include "soc/chip_sim.hh"

using namespace ascend;

namespace {

void
BM_CoreSimGemm(benchmark::State &state)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    compiler::LayerCompiler lc(cfg);
    core::CoreSim sim(cfg);
    const auto layer = model::Layer::linear("gemm", 1024, 1024, 1024);
    const auto prog = lc.compile(layer);
    for (auto _ : state) {
        auto r = sim.run(prog);
        benchmark::DoNotOptimize(r.totalCycles);
    }
    state.SetItemsProcessed(state.iterations() * prog.size());
}
BENCHMARK(BM_CoreSimGemm);

void
BM_CompileResnetLayer(benchmark::State &state)
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    compiler::LayerCompiler lc(cfg);
    const auto layer =
        model::Layer::conv2d("c", 1, 256, 14, 14, 256, 3, 1, 1);
    for (auto _ : state) {
        auto prog = lc.compile(layer);
        benchmark::DoNotOptimize(prog.size());
    }
}
BENCHMARK(BM_CompileResnetLayer);

void
BM_ProfileGestureNet(benchmark::State &state)
{
    // Private cold cache so the measurement covers the full
    // compile + simulate path, not the memo hit.
    runtime::SimSession session(
        arch::makeCoreConfig(arch::CoreVersion::Tiny), {},
        std::make_shared<runtime::SimCache>());
    const auto net = model::zoo::gestureNet(1);
    for (auto _ : state) {
        session.cache().clear();
        auto runs = session.runInference(net);
        benchmark::DoNotOptimize(runs.size());
    }
}
BENCHMARK(BM_ProfileGestureNet);

void
BM_ProfileGestureNetCached(benchmark::State &state)
{
    // Warm-cache counterpart: all layer results come from the memo.
    runtime::SimSession session(
        arch::makeCoreConfig(arch::CoreVersion::Tiny), {},
        std::make_shared<runtime::SimCache>());
    const auto net = model::zoo::gestureNet(1);
    auto warm = session.runInference(net);
    benchmark::DoNotOptimize(warm.size());
    for (auto _ : state) {
        auto runs = session.runInference(net);
        benchmark::DoNotOptimize(runs.size());
    }
}
BENCHMARK(BM_ProfileGestureNetCached);

void
BM_LlcAccess(benchmark::State &state)
{
    memory::Llc llc(memory::LlcConfig{96 * kMiB, 16, 4 * kKiB, 1});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(llc.access(addr));
        addr += 4 * kKiB;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcAccess);

void
BM_ChipSimFluid(benchmark::State &state)
{
    // 64 cores x 32 tasks with index-derived skew: exercises the
    // parallel fluid advance (and the Chip trace spans under
    // ASCEND_TRACE). The workload is identical every iteration, so
    // the emitted spans dedup and the trace stays iteration-count
    // independent.
    std::vector<std::vector<soc::CoreTask>> per_core(64);
    for (std::size_t c = 0; c < per_core.size(); ++c) {
        per_core[c].resize(32);
        for (std::size_t t = 0; t < per_core[c].size(); ++t) {
            soc::CoreTask &task = per_core[c][t];
            task.computeSeconds = 1e-5 * double(1 + (c * 7 + t * 3) % 11);
            task.memBytes = Bytes(4 * kKiB * (1 + (c + 5 * t) % 13));
        }
    }
    for (auto _ : state) {
        auto r = soc::runChipSim(per_core, 1.0e12);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 32);
}
BENCHMARK(BM_ChipSimFluid);

void
BM_DesQueueThroughput(benchmark::State &state)
{
    // Raw event-queue rate: schedule a batch with interleaved times
    // and priorities, then drain it through no-op handlers. Measures
    // the canonical-key heap plus dispatch plumbing with zero client
    // work — the floor every kernel client pays per event.
    const std::size_t events = std::size_t(state.range(0));
    for (auto _ : state) {
        des::Kernel kernel;
        for (std::size_t i = 0; i < events; ++i)
            kernel.schedule(double((i * 7919) % events),
                            std::int32_t(i % 4), "noop",
                            [](des::Kernel &) {});
        kernel.run();
        benchmark::DoNotOptimize(kernel.stats().eventsDispatched);
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_DesQueueThroughput)->Arg(1 << 10)->Arg(1 << 16);

void
BM_DesDispatchOverhead(benchmark::State &state)
{
    // Self-rescheduling chain of depth-1 events — the chip_sim /
    // elastic_run usage shape (queue length ~1). Measures per-event
    // dispatch overhead with a hot queue, i.e. the kernel tax the
    // ported loops pay per iteration versus a hand-rolled while.
    constexpr std::uint64_t kChain = 4096;
    for (auto _ : state) {
        des::Kernel kernel;
        std::uint64_t left = kChain;
        std::function<void(des::Kernel &)> next =
            [&](des::Kernel &k) {
                if (--left)
                    k.schedule(k.now() + 1.0, 0, "chain", next);
            };
        kernel.schedule(0.0, 0, "chain", next);
        kernel.run();
        benchmark::DoNotOptimize(kernel.stats().eventsDispatched);
    }
    state.SetItemsProcessed(state.iterations() * kChain);
}
BENCHMARK(BM_DesDispatchOverhead);

void
BM_DesPhaseFanout(benchmark::State &state)
{
    // Deterministic parallel phase over a fixed-grain slicing of a
    // touch-every-element body: the kernel-side cost of what used to
    // be chip_sim's hand-rolled forSlices.
    const std::size_t n = 1 << 16;
    des::KernelOptions options;
    options.parallelGrain = std::size_t(state.range(0));
    des::Kernel kernel(options);
    std::vector<double> cells(n, 1.0);
    for (auto _ : state) {
        kernel.phase("bench.touch", n,
                     [&](std::size_t b, std::size_t e, std::size_t) {
                         for (std::size_t i = b; i < e; ++i)
                             cells[i] *= 1.0000001;
                     });
        benchmark::DoNotOptimize(cells[0]);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DesPhaseFanout)->Arg(512)->Arg(1 << 16);

void
BM_MeshCycle(benchmark::State &state)
{
    noc::MeshConfig cfg;
    noc::MeshNoc mesh(cfg);
    noc::UniformTraffic traffic(0.2, mesh.nodes());
    for (auto _ : state) {
        auto s = mesh.run(traffic, 1000);
        benchmark::DoNotOptimize(s.delivered);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MeshCycle);

} // anonymous namespace

BENCHMARK_MAIN();
