/**
 * @file
 * Compiler ablation: operator fusion. The real tool-chain executes
 * normalization / activation / residual layers as vector passes
 * fused into the producing cube layer's eviction (the granularity of
 * the paper's per-operator charts); this bench measures what that
 * fusion is worth against a naive layer-at-a-time execution, per
 * network and core.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "compiler/fusion.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

struct Sample
{
    Cycles cycles = 0;
    Bytes ext = 0;
};

Sample
run(const compiler::Profiler &profiler, const model::Network &net)
{
    Sample s;
    for (const auto &r : profiler.runInference(net)) {
        s.cycles += r.result.totalCycles;
        s.ext += r.result.extBytes();
    }
    return s;
}

} // anonymous namespace

int
main()
{
    bench::banner("Compiler ablation: operator fusion");
    TextTable t("fused vs layer-at-a-time");
    t.header({"network", "core", "layers", "fused layers", "cycle gain",
              "ext traffic saved %"});

    struct Case
    {
        arch::CoreVersion core;
        model::Network net;
    };
    const Case cases[] = {
        {arch::CoreVersion::Std, model::zoo::resnet50(1)},
        {arch::CoreVersion::Lite, model::zoo::mobilenetV2(1)},
        {arch::CoreVersion::Tiny, model::zoo::gestureNet(1)},
        {arch::CoreVersion::Max, model::zoo::vgg16(1)},
    };
    for (const Case &c : cases) {
        compiler::Profiler profiler(arch::makeCoreConfig(c.core));
        compiler::FusionReport report;
        const auto fused = compiler::fuseNetwork(c.net, &report);
        const Sample plain = run(profiler, c.net);
        const Sample opt = run(profiler, fused);
        t.row({c.net.name, arch::toString(c.core),
               TextTable::num(std::uint64_t(report.layersBefore)),
               TextTable::num(std::uint64_t(report.fusedLayers())),
               TextTable::num(double(plain.cycles) / opt.cycles, 2) +
                   "x",
               TextTable::num(100.0 * (1.0 - double(opt.ext) /
                                                 plain.ext), 1)});
    }
    t.print(std::cout);
    std::cout << "Fused post-operators never round-trip their "
                 "activations off-core: the traffic\nsaving is what "
                 "keeps the Fig. 9 bandwidth profile under the bus "
                 "budgets.\n";
    return 0;
}
