/**
 * @file
 * Compiler ablation: operator fusion. The real tool-chain executes
 * normalization / activation / residual layers as vector passes
 * fused into the producing cube layer's eviction (the granularity of
 * the paper's per-operator charts); this bench measures what that
 * fusion is worth against a naive layer-at-a-time execution, per
 * network and core.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "compiler/fusion.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

struct Sample
{
    Cycles cycles = 0;
    Bytes ext = 0;
};

Sample
run(const runtime::SimSession &session, const model::Network &net)
{
    Sample s;
    for (const auto &r : session.runInference(net)) {
        s.cycles += r.result.totalCycles;
        s.ext += r.result.extBytes();
    }
    return s;
}

} // anonymous namespace

int
main()
{
    bench::banner("Compiler ablation: operator fusion");
    TextTable t("fused vs layer-at-a-time");
    t.header({"network", "core", "layers", "fused layers", "cycle gain",
              "ext traffic saved %"});

    struct Case
    {
        arch::CoreVersion core;
        model::Network net;
    };
    const std::vector<Case> cases = {
        {arch::CoreVersion::Std, model::zoo::resnet50(1)},
        {arch::CoreVersion::Lite, model::zoo::mobilenetV2(1)},
        {arch::CoreVersion::Tiny, model::zoo::gestureNet(1)},
        {arch::CoreVersion::Max, model::zoo::vgg16(1)},
    };
    // Per-case work (fusion + two simulated runs) is independent;
    // run the cases through the pool and print in catalog order.
    struct Row
    {
        compiler::FusionReport report;
        Sample plain, opt;
    };
    const auto rows = runtime::parallelMap(cases, [](const Case &c) {
        runtime::SimSession session(arch::makeCoreConfig(c.core));
        Row r;
        const auto fused = compiler::fuseNetwork(c.net, &r.report);
        r.plain = run(session, c.net);
        r.opt = run(session, fused);
        return r;
    });
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const Case &c = cases[i];
        const Row &r = rows[i];
        t.row({c.net.name, arch::toString(c.core),
               TextTable::num(std::uint64_t(r.report.layersBefore)),
               TextTable::num(std::uint64_t(r.report.fusedLayers())),
               TextTable::num(double(r.plain.cycles) / r.opt.cycles, 2) +
                   "x",
               TextTable::num(100.0 * (1.0 - double(r.opt.ext) /
                                                 r.plain.ext), 1)});
    }
    t.print(std::cout);
    std::cout << "Fused post-operators never round-trip their "
                 "activations off-core: the traffic\nsaving is what "
                 "keeps the Fig. 9 bandwidth profile under the bus "
                 "budgets.\n";
    return 0;
}
