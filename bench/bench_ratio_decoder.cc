/**
 * @file
 * Prefill-vs-decode cycle ratios and KV-cache footprint curves for
 * the KV-cache decoder workload (graph/decoder.hh) — the LLM-era
 * companion to the paper's Figs. 4-8 operator-ratio studies.
 *
 * Three sweeps on the Ascend-Max training core:
 *
 *  1. Phase cycles per context length: prefill over an n-token
 *     prompt vs one decode step at the same context, the
 *     cycles-per-token gap between them, and the replay ratio
 *     n*decode(n)/prefill(n) — how much slower naive token-by-token
 *     generation is than the fused prompt pass.
 *  2. KV footprint vs the LLC capacity ladder (96 MB baseline,
 *     720 MB 3D-SRAM): closed-form bytes, residency, and the re-read
 *     hit rate of the streaming decode access pattern.
 *  3. A decode serving curve through BatchLatencyModel::fromGraph —
 *     batch latency anchors for the fleet simulator, from graphs.
 *
 * `--smoke` shrinks the decoder and the grids for the CI golden
 * (tests/golden/bench_ratio_decoder_smoke.txt); `--golden <file>`
 * self-checks stdout against it. Output is deterministic at any
 * ASCEND_THREADS (the CI graph job diffs T1 vs T8).
 */

#include <cstring>
#include <sstream>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "graph/decoder.hh"
#include "graph/lower.hh"
#include "memory/llc.hh"
#include "serving/latency_model.hh"
#include "soc/training_soc.hh"

using namespace ascend;

namespace {

graph::DecoderConfig
decoderConfig(bool smoke)
{
    graph::DecoderConfig cfg;
    if (smoke) {
        cfg.name = "decoder_smoke";
        cfg.hidden = 256;
        cfg.heads = 4;
        cfg.ffn = 1024;
        cfg.blocks = 2;
        cfg.vocab = 4096;
    } else {
        // GPT-2-large-ish: big enough that the phase asymmetry and
        // the KV footprint story are representative.
        cfg.name = "decoder_1b";
        cfg.hidden = 1536;
        cfg.heads = 16;
        cfg.ffn = 6144;
        cfg.blocks = 24;
        cfg.vocab = 32000;
    }
    return cfg;
}

runtime::SimSession
makeSession()
{
    return runtime::SimSession(soc::TrainingSoc().coreConfig());
}

void
phaseSweep(const graph::DecoderConfig &cfg,
           const std::vector<unsigned> &contexts)
{
    const runtime::SimSession session = makeSession();
    TextTable table("prefill vs decode (" + cfg.name + ", cycles)");
    table.header({"ctx", "prefill", "decode", "prefill/tok",
                  "decode/tok", "replay ratio"});
    for (const unsigned ctx : contexts) {
        const Cycles prefill =
            graph::graphResult(session, graph::prefillGraph(cfg, ctx))
                .totalCycles;
        const Cycles decode =
            graph::graphResult(session, graph::decodeGraph(cfg, ctx))
                .totalCycles;
        table.row({TextTable::num(std::uint64_t(ctx)),
                   TextTable::num(std::uint64_t(prefill)),
                   TextTable::num(std::uint64_t(decode)),
                   TextTable::num(double(prefill) / ctx, 0),
                   TextTable::num(double(decode), 0),
                   TextTable::num(double(ctx) * double(decode) /
                                      double(prefill),
                                  2)});
    }
    table.print(std::cout);
    std::cout << "replay ratio = n*decode(n)/prefill(n): token-by-token"
                 " generation vs one\nfused prompt pass. Decode GEMVs"
                 " re-read the weights for every token, so\nthe ratio"
                 " stays far above 1; quadratic prefill attention claws"
                 " some of\nit back at very long contexts.\n";
}

void
kvFootprintSweep(const graph::DecoderConfig &cfg,
                 const std::vector<unsigned> &contexts)
{
    memory::LlcConfig base; // 96 MiB
    memory::LlcConfig threeD;
    threeD.capacity = 720 * kMiB; // Section 4.1 3D-SRAM point

    TextTable table("KV cache residency (" + cfg.name + ")");
    table.header({"ctx", "KV MiB", "96M fits", "96M reread hit",
                  "720M fits", "720M reread hit"});
    for (const unsigned ctx : contexts) {
        const graph::KvResidency a =
            graph::kvResidency(cfg, ctx, base);
        const graph::KvResidency b =
            graph::kvResidency(cfg, ctx, threeD);
        table.row({TextTable::num(std::uint64_t(ctx)),
                   TextTable::num(double(a.kvBytes) / double(kMiB), 2),
                   a.fits ? "yes" : "no",
                   TextTable::num(100.0 * a.rereadHitRate, 1) + "%",
                   b.fits ? "yes" : "no",
                   TextTable::num(100.0 * b.rereadHitRate, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "kv bytes = 2 * blocks * bytes(batch*ctx*hidden);"
                 " once the footprint\nspills the LLC the streaming"
                 " re-read collapses to DRAM traffic.\n";
}

void
servingCurve(const graph::DecoderConfig &cfg, unsigned ctx,
             unsigned max_batch)
{
    const runtime::SimSession session = makeSession();
    graph::DecoderConfig batched = cfg;
    const serving::BatchLatencyModel model =
        serving::BatchLatencyModel::fromGraph(
            session,
            [&](unsigned b) {
                batched.batch = b;
                return graph::decodeGraph(batched, ctx);
            },
            serving::BatchLatencyModel::denseAnchors(max_batch),
            session.config().clockGhz);

    TextTable table("decode batch latency curve (ctx " +
                    std::to_string(ctx) + ")");
    table.header({"batch", "latency us", "tok/s"});
    for (const auto &[b, sec] : model.points())
        table.row({TextTable::num(std::uint64_t(b)),
                   TextTable::num(sec * 1e6, 1),
                   TextTable::num(double(b) / sec, 0)});
    table.print(std::cout);
    std::cout << "curve fingerprint " << model.fingerprint()
              << " (feeds serving::runFleet)\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string golden;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--golden") == 0 &&
                   i + 1 < argc) {
            golden = argv[++i];
        } else {
            fatal("unknown flag '%s' (--smoke, --golden <file>)",
                  argv[i]);
        }
    }

    std::ostringstream captured;
    std::streambuf *const saved =
        golden.empty() ? nullptr : std::cout.rdbuf(captured.rdbuf());

    bench::banner("KV-cache decoder: prefill/decode ratio + residency");

    const graph::DecoderConfig cfg = decoderConfig(smoke);
    const std::vector<unsigned> contexts =
        smoke ? std::vector<unsigned>{32, 128}
              : std::vector<unsigned>{128, 512, 2048, 8192};
    phaseSweep(cfg, contexts);

    const std::vector<unsigned> kvContexts =
        smoke ? std::vector<unsigned>{128, 100000}
              : std::vector<unsigned>{512, 2048, 8192, 32768, 131072};
    kvFootprintSweep(cfg, kvContexts);

    servingCurve(cfg, smoke ? 64 : 1024, smoke ? 4 : 16);

    if (saved) {
        std::cout.rdbuf(saved);
        std::cout << captured.str();
        if (!bench::checkGolden(captured.str(), golden))
            return 1;
        std::cerr << "golden OK: " << golden << "\n";
    }
    return 0;
}
