/**
 * @file
 * Table 3: PPA comparison among the scalar, vector and cube computing
 * units at 7 nm, from the calibrated analytical unit model.
 *
 * Expected shape (paper): the cube improves both perf/W and perf/mm^2
 * by about one order of magnitude over the vector unit.
 */

#include <iostream>

#include "arch/unit_model.hh"
#include "bench/bench_util.hh"

using namespace ascend;

int
main()
{
    using arch::TechNode;
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    const auto scalar = arch::modelScalar(cfg.clockGhz, TechNode::N7);
    const auto vec = arch::modelVector(cfg.vectorWidthBytes, cfg.clockGhz,
                                       TechNode::N7);
    const auto cube = arch::modelCube(cfg.cube, cfg.clockGhz, TechNode::N7);

    bench::banner("Table 3: comparison among computing units (7 nm)");
    TextTable table("modelled | paper");
    table.header({"metric", "Scalar", "Vector", "Cube", "paper V", "paper C"});
    table.row({"Performance (GFLOPS)",
               TextTable::num(scalar.peakFlops / 1e9, 0),
               TextTable::num(vec.peakFlops / 1e9, 0),
               TextTable::num(cube.peakFlops / 1e9, 0), "256", "8000"});
    table.row({"Power (W)", "-",
               TextTable::num(vec.powerW, 2),
               TextTable::num(cube.powerW, 2), "0.46", "3.13"});
    table.row({"Area (mm2)",
               TextTable::num(scalar.areaMm2, 2),
               TextTable::num(vec.areaMm2, 2),
               TextTable::num(cube.areaMm2, 2), "0.70", "2.57"});
    table.row({"Perf/Power (TFLOPS/W)", "-",
               TextTable::num(vec.perfPerWatt() / 1e12, 2),
               TextTable::num(cube.perfPerWatt() / 1e12, 2),
               "0.56", "2.56"});
    table.row({"Perf/Area (TFLOPS/mm2)",
               TextTable::num(scalar.perfPerArea() / 1e12, 2),
               TextTable::num(vec.perfPerArea() / 1e12, 2),
               TextTable::num(cube.perfPerArea() / 1e12, 2),
               "0.36", "3.11"});
    table.print(std::cout);

    std::cout << "cube/vector perf-per-area advantage: "
              << TextTable::num(cube.perfPerArea() / vec.perfPerArea(), 1)
              << "x (paper: ~8.6x)\n"
              << "cube/vector perf-per-watt advantage: "
              << TextTable::num(cube.perfPerWatt() / vec.perfPerWatt(), 1)
              << "x (paper: ~4.6x)\n";
    return 0;
}
