/**
 * @file
 * Figure 3: the explicit-synchronization execution style. Builds the
 * paper's example by hand — the PSQ dispatches instructions to the
 * MTE / cube / vector queues, which run in parallel until flags and a
 * barrier enforce the data dependencies — and shows that the
 * simulated timeline overlaps the pipes exactly as the figure does.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/core_sim.hh"

using namespace ascend;
using isa::Pipe;

int
main()
{
    const auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    core::CoreSim sim(cfg);

    bench::banner("Figure 3: synchronization example");

    // Two tiles flow through load -> cube -> vector with flags; a
    // barrier separates a second phase.
    isa::Program prog("fig3");
    for (int tile = 0; tile < 2; ++tile) {
        prog.exec(Pipe::Mte1, 100, 0, {}, "load");
        prog.setFlag(Pipe::Mte1, 0, "data ready");
        prog.waitFlag(Pipe::Cube, 0, "wait data");
        prog.exec(Pipe::Cube, 300, 0, {}, "matmul");
        prog.setFlag(Pipe::Cube, 1, "result ready");
        prog.waitFlag(Pipe::Vector, 1, "wait result");
        prog.exec(Pipe::Vector, 150, 0, {}, "activation");
    }
    prog.barrier("phase barrier");
    prog.exec(Pipe::Mte1, 100, 0, {}, "load2");
    prog.setFlag(Pipe::Mte1, 0);
    prog.waitFlag(Pipe::Cube, 0);
    prog.exec(Pipe::Cube, 300, 0, {}, "matmul2");

    const core::SimResult r = sim.run(prog);

    TextTable t("pipe timeline");
    t.header({"pipe", "busy cycles", "finish cycle", "utilization %"});
    for (auto p : {Pipe::Mte1, Pipe::Cube, Pipe::Vector}) {
        t.row({isa::toString(p),
               TextTable::num(std::uint64_t(r.pipe(p).busyCycles)),
               TextTable::num(std::uint64_t(r.pipe(p).finishCycle)),
               TextTable::num(100.0 * r.utilization(p), 1)});
    }
    t.print(std::cout);

    std::cout << "total " << r.totalCycles << " cycles\n"
              << "serial execution would take "
              << (2 * (100 + 300 + 150) + 100 + 300)
              << " cycles; the flagged pipeline overlaps loads with\n"
              << "compute exactly as the paper's Fig. 3 dispatch "
              << "example shows.\n";

    // Demonstrate the second tile's load overlapping the first tile's
    // matmul: mte1 finishes both loads before the cube finishes one.
    simAssert(r.pipe(Pipe::Mte1).finishCycle <
                  r.pipe(Pipe::Cube).finishCycle,
              "loads should overlap cube work");
    return 0;
}
