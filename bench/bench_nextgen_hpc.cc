/**
 * @file
 * Section 7.2 (future work): "we would like to apply fp32 in the cube
 * unit to adapt to some corner applications" — HPC workloads that
 * need full single precision.
 *
 * The bench runs a large fp32 GEMM (the HPC proxy) three ways:
 *   1. on a shipping core, fp32 via the vector unit (the Section 2.2
 *      fallback: "we can also apply the Vector Unit to help fp32"),
 *   2. on the next-generation core's fp32 cube mode (half fp16 rate),
 *   3. the same GEMM in fp16 for reference,
 * and reports the throughput ladder plus the numerical-accuracy
 * ladder from the functional layer (fp32 exact, fp16 rounded, int8
 * quantized) that motivates wanting fp32 at all.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/core_sim.hh"
#include "core/functional.hh"
#include "core/quantize.hh"

using namespace ascend;

int
main()
{
    const model::Layer hpc =
        model::Layer::linear("hpc.gemm", 2048, 2048, 2048,
                             DataType::Fp32);
    const model::Layer hpc16 =
        model::Layer::linear("hpc.gemm16", 2048, 2048, 2048,
                             DataType::Fp16);

    bench::banner("Section 7.2: fp32 in the cube unit (next-gen core)");
    TextTable t("2048^3 GEMM (17.2 GFLOP)");
    t.header({"path", "cycles", "achieved GFLOPS", "vs fp16 cube"});

    // 1. Shipping core: fp32 on the vector unit.
    const auto shipping = arch::makeCoreConfig(arch::CoreVersion::Max);
    {
        compiler::CompileOptions options;
        options.mapGemmToVector = true;
        compiler::LayerCompiler lc(shipping, options);
        core::CoreSim sim(shipping);
        const auto r = sim.run(lc.compile(hpc));
        t.row({"vector-unit fp32 (shipping)",
               TextTable::num(std::uint64_t(r.totalCycles)),
               TextTable::num(double(hpc.flops()) /
                                  double(r.totalCycles) *
                                  shipping.clockGhz, 0),
               "-"});
    }

    // 2/3. Next-gen cube fp32 vs fp16.
    const auto nextgen = arch::makeNextGenCoreConfig();
    compiler::LayerCompiler lc(nextgen);
    core::CoreSim sim(nextgen);
    const auto r32 = sim.run(lc.compile(hpc));
    const auto r16 = sim.run(lc.compile(hpc16));
    t.row({"cube fp32 (next-gen)",
           TextTable::num(std::uint64_t(r32.totalCycles)),
           TextTable::num(double(hpc.flops()) /
                              double(r32.totalCycles) *
                              nextgen.clockGhz, 0),
           TextTable::num(double(r32.totalCycles) / r16.totalCycles,
                          2) + "x"});
    t.row({"cube fp16 (reference)",
           TextTable::num(std::uint64_t(r16.totalCycles)),
           TextTable::num(double(hpc.flops()) /
                              double(r16.totalCycles) *
                              nextgen.clockGhz, 0),
           "1.00x"});
    t.print(std::cout);

    // Why fp32 matters: the accuracy ladder on an ill-conditioned-ish
    // functional GEMM.
    bench::banner("Numerical accuracy ladder (functional layer)");
    Rng rng(77);
    const auto a = model::Tensor::random({64, 256}, rng, 4.0f);
    const auto b = model::Tensor::random({256, 64}, rng, 4.0f);
    const auto ref = core::functional::referenceGemm(a, b);
    TextTable e("RMS error vs fp32 reference");
    e.header({"precision", "rms error"});
    e.row({"fp16 cube",
           TextTable::num(core::quant::rmsError(
                              core::functional::cubeGemm(a, b), ref),
                          4)});
    e.row({"int8 cube",
           TextTable::num(core::quant::rmsError(
                              core::quant::quantizedGemm(a, b, 8), ref),
                          4)});
    e.row({"int4 cube",
           TextTable::num(core::quant::rmsError(
                              core::quant::quantizedGemm(a, b, 4), ref),
                          4)});
    e.print(std::cout);
    std::cout << "The next-gen fp32 cube runs ~2x slower than fp16 but "
                 "~60x faster than routing\nfp32 through the vector "
                 "unit - the Section 7.2 trade for HPC corner cases.\n";
    return 0;
}
