/**
 * @file
 * Table 7: training SoC PPA — Ascend 910 against the V100-like SIMT
 * model, the TPU-v3-like systolic model, and the Xeon-like CPU
 * roofline, on ResNet50 v1.5 training throughput (images/s) and
 * BERT-Large 8-chip training throughput (sequences/s).
 *
 * Expected shape (paper): Ascend 910 wins ResNet50 by ~1.7x over
 * V100 and ~1.9x over TPU v3, and BERT by a larger factor; the CPU is
 * orders of magnitude behind.
 */

#include <iostream>

#include "baseline/cpu.hh"
#include "baseline/simt.hh"
#include "baseline/systolic.hh"
#include "bench/bench_util.hh"
#include "cluster/collective.hh"
#include "model/zoo.hh"
#include "soc/training_soc.hh"

using namespace ascend;

int
main()
{
    soc::TrainingSoc soc910;

    // --- ResNet50 v1.5 training, global batch 256 (8 per core). ---
    const unsigned resnet_batch_per_core = 8;
    const unsigned resnet_batch =
        resnet_batch_per_core * soc910.config().aiCores;
    const auto resnet_core =
        model::zoo::resnet50(resnet_batch_per_core);
    const auto resnet_step = soc910.trainStep(resnet_core);
    const double ascend_resnet = resnet_batch / resnet_step.seconds;

    const auto resnet_full = model::zoo::resnet50(resnet_batch);
    baseline::GpuModel v100(baseline::v100Like());
    const auto v100_resnet = v100.runTraining(resnet_full);
    const double v100_imgs = resnet_batch / v100_resnet.seconds;

    baseline::SystolicArray tpu(baseline::tpuV3Like());
    const auto tpu_resnet = tpu.runTraining(resnet_full);
    const double tpu_imgs =
        resnet_batch / tpu_resnet.seconds(tpu.config().clockGhz);

    baseline::CpuModel cpu{baseline::CpuConfig{}};
    const double cpu_imgs =
        resnet_batch / cpu.trainingStepSeconds(resnet_full);

    // --- BERT-Large training on 8 chips (one server), seq 128
    // (phase-1 pretraining, the configuration behind the published
    // sequences/s numbers). ---
    const unsigned bert_batch_per_core = 2; // 64 sequences per chip
    const auto bert_core = model::zoo::bertLarge(bert_batch_per_core, 128);
    const auto bert_step = soc910.trainStep(bert_core);
    const unsigned bert_batch_chip =
        bert_batch_per_core * soc910.config().aiCores;

    cluster::ClusterConfig one_server;
    one_server.servers = 1;
    cluster::TrainingJob bert_job;
    bert_job.stepSecondsPerChip = bert_step.seconds;
    bert_job.gradientBytes = bert_core.parameterBytes(); // fp16 grads
    bert_job.samplesPerChipStep = bert_batch_chip;
    const double ascend_bert_8p = cluster::throughputSamplesPerSec(
        bert_job, one_server, 8);

    const auto bert_full = model::zoo::bertLarge(bert_batch_chip, 128);
    const auto v100_bert = v100.runTraining(bert_full);
    // 8 V100s with NVLink allreduce (~1.5x our HCCS bandwidth).
    cluster::ClusterConfig dgx = one_server;
    dgx.server.hccsBytesPerSec = 45e9;
    cluster::TrainingJob v100_job;
    v100_job.stepSecondsPerChip = v100_bert.seconds;
    v100_job.gradientBytes = bert_full.parameterBytes();
    v100_job.samplesPerChipStep = bert_batch_chip;
    const double v100_bert_8p =
        cluster::throughputSamplesPerSec(v100_job, dgx, 8);

    bench::banner("Table 7: training SoC PPA");
    TextTable t("modelled | paper");
    t.header({"metric", "V100-like", "TPUv3-like", "CPU-like",
              "Ascend 910", "paper V100", "paper 910"});
    t.row({"Peak perf (TFLOPS fp16)",
           TextTable::num(v100.config().tensorFlopsPerSec / 1e12, 0),
           TextTable::num(tpu.peakFlops() / 1e12, 0), "1.5",
           TextTable::num(soc910.peakFlopsFp16() / 1e12, 0),
           "125", "256"});
    t.row({"Power (W)", "300", "250", "205", "300", "300", "300"});
    t.row({"HBM bandwidth (GB/s)", "900", "900", "128", "1200", "900",
           "1200"});
    t.row({"ResNet50 v1.5 train (img/s)",
           TextTable::num(v100_imgs, 0), TextTable::num(tpu_imgs, 0),
           TextTable::num(cpu_imgs, 1), TextTable::num(ascend_resnet, 0),
           "1058", "1809"});
    t.row({"BERT-Large 8p (seq/s)", TextTable::num(v100_bert_8p, 0), "-",
           "-", TextTable::num(ascend_bert_8p, 0), "822", "3169"});
    t.print(std::cout);

    std::cout << "Ascend/V100 ResNet50 speedup: "
              << TextTable::num(ascend_resnet / v100_imgs, 2)
              << "x (paper: 1.71x)\n"
              << "Ascend/TPU ResNet50 speedup:  "
              << TextTable::num(ascend_resnet / tpu_imgs, 2)
              << "x (paper: 1.85x vs published 976 img/s)\n"
              << "Ascend/V100 BERT 8p speedup:  "
              << TextTable::num(ascend_bert_8p / v100_bert_8p, 2)
              << "x (paper: 3.85x)\n";

    std::cout << "\nAscend 910 step breakdown (ResNet50): compute "
              << TextTable::num(100 * resnet_step.computeSeconds /
                                    resnet_step.seconds, 0)
              << "%, LLC-bound "
              << TextTable::num(100 * resnet_step.llcBoundSeconds /
                                    resnet_step.seconds, 0)
              << "%, HBM-bound "
              << TextTable::num(100 * resnet_step.hbmBoundSeconds /
                                    resnet_step.seconds, 0)
              << "%, LLC hit rate "
              << TextTable::num(100 * resnet_step.llcHitRate(), 0)
              << "%\n";
    return 0;
}
