/**
 * @file
 * Chaos harness for the elastic cluster engine: prove with real
 * SIGKILLs that a run killed at an arbitrary recovery-event boundary
 * and re-invoked resumes from its last on-disk checkpoint and
 * produces a byte-identical report.
 *
 * The engine runs on the des::Kernel, so every CHAOS-EVENT marker —
 * and therefore every kill point — lands at a kernel event boundary:
 * onEvent fires from inside a dispatched handler (checkpoint
 * quiescent hook, failure/rollback poll, or step event), never
 * mid-phase. Checkpoints themselves are taken only at kernel
 * quiescent points, which is what makes any kill-resume pair replay
 * the identical event chain.
 *
 * Three modes:
 *  - (no args) soak: run the chaos scenario for two seeds in-process
 *    and print the elastic outcome tables (a normal bench);
 *  - --chaos: the CI mode. Computes the uninterrupted report, then
 *    for >= 3 kill points forks a child (`--run`), counts its
 *    flushed CHAOS-EVENT markers, SIGKILLs it after the k-th, runs
 *    a resume child to completion and byte-diffs its report file
 *    against the uninterrupted one. Exit 1 on any mismatch.
 *  - --run: child mode. Executes the seeded scenario with on-disk
 *    checkpoints, emitting one CHAOS-EVENT line per recovery event
 *    (with a short sleep so the parent's kill lands mid-run) and
 *    writing the final report to --out.
 *
 * The seed comes from ASCEND_CHAOS_SEED (default 3); CI runs two.
 * Everything simulated is deterministic — the only nondeterminism is
 * *where* the kill lands, which the contract makes irrelevant.
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "cluster/elastic_run.hh"

using namespace ascend;
using cluster::ElasticOptions;
using cluster::ElasticRunResult;
using resilience::DegradedMode;
using resilience::FaultSchedule;
using resilience::FaultSpec;
using resilience::RetryPolicy;

namespace {

/** Everything one chaos scenario needs, derived from the seed. */
struct Scenario
{
    cluster::TrainingJob job;
    cluster::ClusterConfig cl;
    unsigned chips = 64;
    unsigned steps = 40;
    FaultSchedule faults;
    RetryPolicy retry;
    DegradedMode mode = DegradedMode::ContinueDegraded;
    ElasticOptions options;
};

Scenario
scenario(std::uint64_t seed)
{
    Scenario sc;
    sc.job.stepSecondsPerChip = 0.05;
    sc.job.gradientBytes = 51 * kMiB;
    sc.job.samplesPerChipStep = 256;

    FaultSpec spec;
    spec.seed = seed;
    spec.horizonSec = 600.0;
    spec.cores = unsigned(ceilDiv(sc.chips, sc.cl.server.chips));
    spec.links = spec.cores;
    spec.corePermanentPerSec = 0.15;
    spec.linkDownPerSec = 1.0;
    spec.linkDegradePerSec = 0.5;
    spec.eccUncorrectablePerSec = 0.4;
    spec.stragglerFraction = 0.25;
    spec.stragglerSlowdown = 1.6;
    sc.faults = FaultSchedule::generate(spec);

    sc.options.spareNodes = 2;
    sc.options.stateBytes = 256 * kMiB;
    sc.options.failoverRestartSec = 2.0;
    sc.options.reshardRestartSec = 4.0;
    sc.options.checkpoint.enabled = true;
    sc.options.checkpoint.intervalSec = 1e6; // step cadence drives it
    sc.options.checkpoint.saveSec = 0.5;
    sc.options.checkpoint.restartSec = 1.0;
    sc.options.checkpointEverySteps = 5;
    return sc;
}

std::uint64_t
seedFromEnv()
{
    const char *env = std::getenv("ASCEND_CHAOS_SEED");
    return env && *env ? std::strtoull(env, nullptr, 10) : 3;
}

ElasticRunResult
runScenario(Scenario &sc)
{
    return cluster::runElastic(sc.job, sc.cl, sc.chips, sc.steps,
                               sc.faults, sc.retry, sc.mode,
                               sc.options);
}

/** Child mode: run with on-disk checkpoints, marking every event. */
int
childMain(std::uint64_t seed, const std::string &ckpt_dir,
          const std::string &out_path)
{
    Scenario sc = scenario(seed);
    sc.options.checkpointDir = ckpt_dir;
    unsigned events = 0;
    sc.options.onEvent = [&events](const std::string &) {
        std::printf("CHAOS-EVENT %u\n", ++events);
        std::fflush(stdout);
        // Give the parent's SIGKILL a window to land mid-run; wall
        // clock never feeds back into simulated results.
        ::usleep(20 * 1000);
    };
    const ElasticRunResult r = runScenario(sc);
    if (!writeFileText(out_path, r.report())) {
        std::fprintf(stderr, "chaos child: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    return 0;
}

/** Fork/exec a child run; returns its pid, stdout on @p out_fd. */
pid_t
spawnChild(const char *self, std::uint64_t seed,
           const std::string &ckpt_dir, const std::string &out_path,
           int *out_fd)
{
    int fds[2];
    if (::pipe(fds) != 0)
        fatal("pipe failed");
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed");
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        const std::string seed_str = std::to_string(seed);
        const char *argv[] = {self,
                              "--run",
                              "--seed",
                              seed_str.c_str(),
                              "--ckpt-dir",
                              ckpt_dir.c_str(),
                              "--out",
                              out_path.c_str(),
                              nullptr};
        ::execv(self, const_cast<char *const *>(argv));
        std::perror("execv");
        ::_exit(127);
    }
    ::close(fds[1]);
    *out_fd = fds[0];
    return pid;
}

/** Read event-marker lines until @p kill_after, then SIGKILL. */
void
killAfterEvents(pid_t pid, int out_fd, unsigned kill_after)
{
    FILE *stream = ::fdopen(out_fd, "r");
    char line[256];
    unsigned seen = 0;
    while (seen < kill_after &&
           std::fgets(line, sizeof(line), stream)) {
        if (std::strncmp(line, "CHAOS-EVENT ", 12) == 0)
            ++seen;
    }
    ::kill(pid, SIGKILL);
    // Drain whatever raced out before the kill took effect.
    while (std::fgets(line, sizeof(line), stream)) {
    }
    std::fclose(stream);
    int status = 0;
    ::waitpid(pid, &status, 0);
}

/** One kill-and-resume experiment; true when the diff is empty. */
bool
chaosExperiment(const char *self, std::uint64_t seed,
                unsigned kill_after, const std::string &golden,
                const std::string &work_dir)
{
    const std::string ckpt_dir = work_dir + "/ckpt";
    const std::string out_path = work_dir + "/out.txt";
    std::error_code ec;
    std::filesystem::remove_all(work_dir, ec);
    std::filesystem::create_directories(ckpt_dir, ec);

    int out_fd = -1;
    const pid_t victim =
        spawnChild(self, seed, ckpt_dir, out_path, &out_fd);
    killAfterEvents(victim, out_fd, kill_after);

    // Resume (or, if the victim finished first, re-run) to completion.
    const pid_t resumed =
        spawnChild(self, seed, ckpt_dir, out_path, &out_fd);
    {
        FILE *stream = ::fdopen(out_fd, "r");
        char line[256];
        while (std::fgets(line, sizeof(line), stream)) {
        }
        std::fclose(stream);
    }
    int status = 0;
    ::waitpid(resumed, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::cerr << "chaos: resume child failed (seed " << seed
                  << ", kill after " << kill_after << ")\n";
        return false;
    }

    std::string resumed_report;
    if (!readFileText(out_path, resumed_report)) {
        std::cerr << "chaos: missing report " << out_path << "\n";
        return false;
    }
    const std::string diff = diffGolden(golden, resumed_report);
    if (!diff.empty()) {
        std::cerr << "chaos: resumed report differs (seed " << seed
                  << ", kill after " << kill_after << "):\n"
                  << diff;
        return false;
    }
    return true;
}

int
chaosMain(const char *self)
{
    const std::uint64_t seed = seedFromEnv();
    Scenario sc = scenario(seed);
    const ElasticRunResult uninterrupted = runScenario(sc);
    const std::string golden = uninterrupted.report();

    unsigned total_events = 0;
    for (char c : uninterrupted.eventLog)
        if (c == '\n')
            ++total_events;
    std::cout << "chaos seed " << seed << ": " << total_events
              << " recovery events, "
              << (uninterrupted.completed ? "completed" : "failed")
              << " in " << uninterrupted.stepsDone << " steps\n";
    if (total_events < 3) {
        std::cerr << "chaos: scenario too quiet (" << total_events
                  << " events); pick another seed\n";
        return 1;
    }

    // Kill at >= 3 distinct event boundaries spread across the run.
    std::vector<unsigned> kill_points = {1, total_events / 2,
                                         total_events - 1};
    std::sort(kill_points.begin(), kill_points.end());
    kill_points.erase(
        std::unique(kill_points.begin(), kill_points.end()),
        kill_points.end());

    const std::string work_dir =
        "chaos_work_" + std::to_string(::getpid());
    bool ok = true;
    for (unsigned k : kill_points) {
        const bool pass =
            chaosExperiment(self, seed, k, golden, work_dir);
        std::cout << "  kill after event " << k << ": "
                  << (pass ? "resumed byte-identical" : "MISMATCH")
                  << "\n";
        ok = ok && pass;
    }
    std::error_code ec;
    std::filesystem::remove_all(work_dir, ec);
    std::cout << (ok ? "chaos: all kill points byte-identical\n"
                     : "chaos: FAILED\n");
    return ok ? 0 : 1;
}

void
soak()
{
    bench::banner("Elastic-run chaos soak (seeded failover / shrink / "
                  "rollback / speculation)");
    TextTable t("elastic runs under chaos schedules");
    t.header({"seed", "seconds", "steps", "failovers", "shrinks",
              "rollbacks", "replayed", "speculations", "final chips",
              "completed"});
    for (std::uint64_t seed : {std::uint64_t(3), std::uint64_t(11)}) {
        Scenario sc = scenario(seed);
        const ElasticRunResult r = runScenario(sc);
        t.row({TextTable::num(seed), TextTable::num(r.seconds, 3),
               TextTable::num(std::uint64_t(r.stepsDone)) + "/" +
                   TextTable::num(std::uint64_t(sc.steps)),
               TextTable::num(r.counters.failovers),
               TextTable::num(r.counters.shrinks),
               TextTable::num(r.counters.rollbacks),
               TextTable::num(r.counters.replayedSteps),
               TextTable::num(r.counters.speculations),
               TextTable::num(std::uint64_t(r.finalChips)),
               r.completed ? "yes" : "no"});
    }
    t.print(std::cout);
    std::cout << "run `ASCEND_CHAOS_SEED=<n> bench_chaos --chaos` for "
                 "the SIGKILL/resume\nbyte-diff experiment CI "
                 "enforces.\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool run_mode = false, chaos_mode = false;
    std::uint64_t seed = seedFromEnv();
    std::string ckpt_dir, out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--run") == 0) {
            run_mode = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos_mode = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 &&
                   i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--ckpt-dir") == 0 &&
                   i + 1 < argc) {
            ckpt_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else {
            fatal("unknown flag '%s' (--chaos | --run --seed <n> "
                  "--ckpt-dir <d> --out <f>)",
                  argv[i]);
        }
    }
    if (run_mode)
        return childMain(seed, ckpt_dir, out_path);
    if (chaos_mode)
        return chaosMain("/proc/self/exe");
    soak();
    return 0;
}
