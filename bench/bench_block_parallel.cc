/**
 * @file
 * Section 5.2 study: block-level parallel execution on the Ascend
 * 910 with shared-memory contention.
 *
 * The roofline model assumes 32 lockstep cores; the fluid chip
 * simulator relaxes that. This bench compares three executions of a
 * ResNet50 inference batch on 32 cores:
 *   1. lockstep roofline (the TrainingSoc estimate),
 *   2. fluid simulation with an even batch split,
 *   3. fluid simulation with a skewed split (imbalanced blocks),
 * and reports the contention/straggler penalties, plus the NoC tail
 * latency (p50/p99) the memory traffic experiences.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/zoo.hh"
#include "noc/mesh.hh"
#include "soc/chip_sim.hh"
#include "soc/training_soc.hh"

using namespace ascend;

int
main()
{
    soc::TrainingSoc soc910;
    const auto &cfg = soc910.config();

    bench::banner("Section 5.2: block-parallel ResNet50 on 32 cores");

    // 1. Lockstep roofline.
    const auto roofline = soc910.inferStep(model::zoo::resnet50(4));

    // 2. Fluid, even split: every core runs batch 4.
    const auto fluid_even =
        soc910.fluidInferStep(model::zoo::resnet50(4));

    // 3. Fluid, skewed split: half the cores get batch 6, half get 2.
    const auto heavy = soc910.coreTasks(model::zoo::resnet50(6));
    const auto light = soc910.coreTasks(model::zoo::resnet50(2));
    std::vector<std::vector<soc::CoreTask>> skewed;
    for (unsigned c = 0; c < cfg.aiCores; ++c)
        skewed.push_back(c % 2 ? heavy : light);
    const auto fluid_skewed =
        soc::runChipSim(skewed, cfg.llcBandwidth);

    TextTable t("batch-128 inference, 32 cores");
    t.header({"model", "time (ms)", "vs roofline", "mem util %"});
    t.row({"lockstep roofline",
           TextTable::num(roofline.seconds * 1e3, 2), "1.00x", "-"});
    t.row({"fluid, even blocks",
           TextTable::num(fluid_even.makespan * 1e3, 2),
           TextTable::num(fluid_even.makespan / roofline.seconds, 2) +
               "x",
           TextTable::num(100 * fluid_even.avgMemUtilization, 1)});
    t.row({"fluid, skewed blocks (6/2)",
           TextTable::num(fluid_skewed.makespan * 1e3, 2),
           TextTable::num(fluid_skewed.makespan / roofline.seconds, 2) +
               "x",
           TextTable::num(100 * fluid_skewed.avgMemUtilization, 1)});
    t.print(std::cout);
    std::cout << "The fluid model is an optimistic bound (LLC-rate "
                 "memory, no HBM misses), so it\nundershoots the "
                 "roofline; the load-balance effect is the even-vs-"
                 "skewed gap:\nskewed blocks cost "
              << TextTable::num(fluid_skewed.makespan /
                                    fluid_even.makespan, 2)
              << "x - the Section 5.2 block scheduler's job is to keep "
                 "splits even.\n";

    // NoC tail latency under the corresponding traffic level.
    bench::banner("NoC tail latency under load (bufferless mesh)");
    noc::MeshNoc mesh(cfg.mesh);
    TextTable n("latency percentiles");
    n.header({"inject rate", "p50 (cy)", "p99 (cy)"});
    for (double rate : {0.1, 0.3, 0.45}) {
        noc::UniformTraffic traffic(rate, mesh.nodes());
        mesh.run(traffic, 20000);
        n.row({TextTable::num(rate, 2),
               TextTable::num(mesh.latencyPercentile(0, 0.5), 1),
               TextTable::num(mesh.latencyPercentile(0, 0.99), 1)});
    }
    n.print(std::cout);
    std::cout << "The p99/p50 gap widens with load - the deflection "
                 "tail the paper's QoS policy\nbounds for "
                 "latency-critical traffic.\n";
    return 0;
}
