/**
 * @file
 * Section 3.1.1 / Fig. 12: the Ascend 910 compute-die NoC — a 4 x 6
 * 2D mesh with 1024-bit links at 2 GHz (256 GB/s per link), in a
 * bufferless (deflection) organization, with core-to-LLC hotspot
 * traffic sustaining ~4 TB/s of aggregate L2 bandwidth.
 *
 * The bench sweeps injection rate under uniform traffic for both the
 * bufferless and buffered router (the area-saving design choice), and
 * then runs the core-to-LLC hotspot pattern of the real floorplan.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "noc/mesh.hh"

using namespace ascend;

int
main()
{
    noc::MeshConfig cfg; // 6x4, 128 B flits, 2 GHz, bufferless
    noc::MeshNoc mesh(cfg);

    bench::banner("Section 3.1.1: Ascend 910 mesh NoC (4 x 6, "
                  "1024-bit links at 2 GHz)");
    std::cout << "per-link bandwidth: "
              << formatRate(mesh.linkBandwidthBytesPerSec())
              << " (paper: 256 GB/s)\n";

    for (bool bufferless : {true, false}) {
        cfg.bufferless = bufferless;
        noc::MeshNoc m(cfg);
        TextTable t(bufferless ? "bufferless (deflection) router"
                               : "buffered (input-queued) router");
        t.header({"inject rate", "delivered/cy", "avg lat (cy)",
                  "avg hops", "agg bandwidth", "stall %"});
        for (double rate : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
            noc::UniformTraffic traffic(rate, m.nodes());
            const auto s = m.run(traffic, 20000);
            t.row({TextTable::num(rate, 2),
                   TextTable::num(s.throughputBytesPerCycle(cfg.flitBytes) /
                                      cfg.flitBytes, 2),
                   TextTable::num(s.avgLatencyCycles, 1),
                   TextTable::num(s.avgHopCount, 2),
                   formatRate(s.bandwidthBytesPerSec(cfg)),
                   TextTable::num(100.0 * s.injectionStalls /
                                      std::max<std::uint64_t>(
                                          1, s.injected +
                                                 s.injectionStalls), 1)});
        }
        t.print(std::cout);
    }

    // Core-to-LLC hotspot traffic: 8 LLC-slice nodes along the two
    // middle columns serve the surrounding cores.
    bench::banner("Core-to-LLC pattern: aggregate L2 bandwidth");
    cfg.bufferless = true;
    noc::MeshNoc m(cfg);
    std::vector<unsigned> slices = {5, 6, 9, 10, 13, 14, 17, 18};
    TextTable t("hotspot toward 8 LLC slices");
    t.header({"inject rate", "agg bandwidth", "avg lat (cy)",
              "max link util %"});
    for (double rate : {0.1, 0.2, 0.4, 0.6, 0.8}) {
        noc::HotspotTraffic traffic(rate, slices);
        const auto s = m.run(traffic, 20000);
        t.row({TextTable::num(rate, 2),
               formatRate(s.bandwidthBytesPerSec(cfg)),
               TextTable::num(s.avgLatencyCycles, 1),
               TextTable::num(100 * s.maxLinkUtilization, 1)});
    }
    t.print(std::cout);

    // The real floorplan co-locates LLC slices with the core
    // clusters, so most requests travel one or two hops; that is what
    // sustains the published 4 TB/s aggregate.
    TextTable nt("floorplanned: each core to its nearest LLC slice");
    nt.header({"inject rate", "agg bandwidth", "avg lat (cy)",
               "avg hops"});
    for (double rate : {0.4, 0.8, 1.0}) {
        noc::NearestSliceTraffic traffic(rate, slices, cfg.cols);
        const auto s = m.run(traffic, 20000);
        nt.row({TextTable::num(rate, 2),
                formatRate(s.bandwidthBytesPerSec(cfg)),
                TextTable::num(s.avgLatencyCycles, 1),
                TextTable::num(s.avgHopCount, 2)});
    }
    nt.print(std::cout);
    std::cout << "(paper: total throughput to L2 is 4 TB/s)\n";
    return 0;
}
