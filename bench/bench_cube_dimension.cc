/**
 * @file
 * Table 4: area/density benefit of a large cube versus many small
 * cubes at 12 nm — one 16x16x16 cube against eight 4x4x4 cubes (the
 * GPU-SM-like organization) — plus the paper's caveat that a 32x32x32
 * cube loses MAC utilization on real layer shapes.
 *
 * Expected shape (paper): going from 4^3 x 8 to 16^3 raises
 * throughput ~4.7x while area grows only ~2.5x (330 -> 600
 * GFLOPS/mm^2), but 32^3 is *worse* in utilization.
 */

#include <iostream>

#include "arch/unit_model.hh"
#include "bench/bench_util.hh"
#include "model/zoo.hh"

using namespace ascend;

namespace {

/** Average cube MAC utilization of a network on a given cube shape. */
double
cubeUtilization(const arch::CubeShape &shape, const model::Network &net)
{
    auto cfg = arch::makeCoreConfig(arch::CoreVersion::Max);
    cfg.cube = shape;
    // Scale L0 capacity with the cube so the comparison isolates the
    // utilization effect of the fractal shape itself.
    const double scale =
        double(shape.macsPerCycle()) / (16.0 * 16.0 * 16.0);
    cfg.l0aBytes = Bytes(cfg.l0aBytes * std::max(scale, 0.25));
    cfg.l0bBytes = Bytes(cfg.l0bBytes * std::max(scale, 0.25));
    cfg.l0cBytes = Bytes(cfg.l0cBytes * std::max(scale, 0.25));
    cfg.busABytesPerCycle = Bytes(cfg.busABytesPerCycle * scale) + 1;
    cfg.busBBytesPerCycle = Bytes(cfg.busBBytesPerCycle * scale) + 1;

    runtime::SimSession session(cfg);
    Flops flops = 0;
    Cycles cube_busy = 0;
    for (const auto &run : session.runInference(net)) {
        flops += run.result.totalFlops;
        cube_busy += run.result.pipe(isa::Pipe::Cube).busyCycles;
    }
    const double peak =
        double(shape.flopsPerCycle()) * double(cube_busy);
    return peak > 0 ? double(flops) / peak : 0.0;
}

} // anonymous namespace

int
main()
{
    using arch::TechNode;
    const double ghz_small = 1.66; // GPU-class clock for the 4^3 SM
    const double ghz_big = 1.0;

    const auto small = arch::modelCube({4, 4, 4}, ghz_small, TechNode::N12);
    const auto big = arch::modelCube({16, 16, 16}, ghz_big, TechNode::N12);

    bench::banner("Table 4: area/density benefits of the cube units "
                  "(12 nm)");
    TextTable table("modelled | paper");
    table.header({"metric", "4x4x4 x8", "16x16x16", "paper 4^3x8",
                  "paper 16^3"});
    table.row({"Core area (mm2)",
               TextTable::num(8 * small.areaMm2, 1),
               TextTable::num(big.areaMm2, 1), "5.2", "13.2"});
    table.row({"FP16 perf (TFLOPS)",
               TextTable::num(8 * small.peakFlops / 1e12, 2),
               TextTable::num(big.peakFlops / 1e12, 2), "1.7", "8"});
    table.row({"Perf/Area (GFLOPS/mm2)",
               TextTable::num(small.peakFlops * 8 / (8 * small.areaMm2) /
                              1e9, 0),
               TextTable::num(big.peakFlops / big.areaMm2 / 1e9, 0),
               "330", "600"});
    table.print(std::cout);

    // The 32^3 caveat: MAC utilization across real networks. Each
    // (cube dim, network) cell is an independent simulation; run the
    // whole grid through the pool, then print in fixed order.
    bench::banner("Section 2.1 caveat: MAC utilization vs cube size");
    TextTable util("cube MAC utilization per network");
    util.header({"cube", "ResNet50 b=1", "MobileNetV2 b=1",
                 "BERT-Large 2l b=1"});
    const std::vector<model::Network> nets = {
        model::zoo::resnet50(1), model::zoo::mobilenetV2(1),
        model::zoo::bert("bert2", 1, 384, 1024, 2, 16, 4096)};
    const std::vector<unsigned> dims = {8, 16, 32};
    std::vector<std::pair<unsigned, std::size_t>> cells;
    for (unsigned dim : dims)
        for (std::size_t n = 0; n < nets.size(); ++n)
            cells.emplace_back(dim, n);
    const auto utils = runtime::parallelMap(
        cells, [&](const std::pair<unsigned, std::size_t> &cell) {
            const arch::CubeShape shape{cell.first, cell.first,
                                        cell.first};
            return cubeUtilization(shape, nets[cell.second]);
        });
    for (std::size_t d = 0; d < dims.size(); ++d) {
        const std::size_t base = d * nets.size();
        util.row({std::to_string(dims[d]) + "^3",
                  TextTable::num(100 * utils[base + 0], 1),
                  TextTable::num(100 * utils[base + 1], 1),
                  TextTable::num(100 * utils[base + 2], 1)});
    }
    util.print(std::cout);
    std::cout << "(paper: 32^3 becomes inefficient due to lower MAC "
                 "utilization)\n";
    return 0;
}
